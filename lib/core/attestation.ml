type quote = {
  measurement : string;
  group : Crypto.Dh.group;
  dh_public : Bigint.t;
  nonce : string;
  signature : string;
  ak : Crypto.Rsa.public;
  ak_endorsement : string;
  ek_cert : Crypto.Rsa.certificate;
}

type attester = { identity : Identity.t; measurement : string }

let attester_of_nf instr ~id =
  match Instructions.find instr ~id with
  | None -> Error (Instructions.Unknown_function id)
  | Some h -> Ok { identity = Instructions.identity instr; measurement = h.Instructions.measurement }

type responder = { secret : Crypto.Dh.secret }

let respond rng ?(group = Crypto.Dh.sim_768) attester ~nonce =
  let secret, dh_public = Crypto.Dh.keypair rng group in
  let payload = Instructions.quote_payload ~measurement:attester.measurement ~group ~dh_public ~nonce in
  let signature = Identity.sign_quote attester.identity payload in
  ( { secret },
    {
      measurement = attester.measurement;
      group;
      dh_public;
      nonce;
      signature;
      ak = Identity.ak_public attester.identity;
      ak_endorsement = Identity.ak_endorsement attester.identity;
      ek_cert = Identity.ek_certificate attester.identity;
    } )

let responder_key r ~verifier_share = Crypto.Dh.shared_key ~secret:r.secret ~peer:verifier_share

type verify_error =
  | Bad_certificate_chain
  | Bad_signature
  | Nonce_mismatch
  | Unexpected_measurement of { expected : string; got : string }

let verify_error_to_string = function
  | Bad_certificate_chain -> "vendor/EK/AK certificate chain does not verify"
  | Bad_signature -> "quote signature invalid"
  | Nonce_mismatch -> "quote does not cover the challenge nonce (replay?)"
  | Unexpected_measurement { expected; got } ->
    Printf.sprintf "measurement mismatch: expected %s, got %s" (Crypto.Sha256.to_hex expected)
      (Crypto.Sha256.to_hex got)

type verified = { key : string; verifier_share : Bigint.t; quote_measurement : string }

let verify rng ~vendor_public ?expected_measurement ~nonce quote =
  if
    not
      (Identity.check_ak_chain ~vendor_public ~ek_cert:quote.ek_cert ~ak:quote.ak
         ~endorsement:quote.ak_endorsement)
  then Error Bad_certificate_chain
  else if not (String.equal nonce quote.nonce) then Error Nonce_mismatch
  else begin
    let payload =
      Instructions.quote_payload ~measurement:quote.measurement ~group:quote.group ~dh_public:quote.dh_public
        ~nonce
    in
    if not (Crypto.Rsa.verify quote.ak ~msg:payload ~signature:quote.signature) then Error Bad_signature
    else begin
      match expected_measurement with
      | Some expected when not (String.equal expected quote.measurement) ->
        Error (Unexpected_measurement { expected; got = quote.measurement })
      | _ ->
        let secret, verifier_share = Crypto.Dh.keypair rng quote.group in
        let key = Crypto.Dh.shared_key ~secret ~peer:quote.dh_public in
        Ok { key; verifier_share; quote_measurement = quote.measurement }
    end
  end

let quote_to_bytes (q : quote) =
  Wire.encode
    [
      q.measurement;
      Bigint.to_hex q.group.Crypto.Dh.p;
      Bigint.to_hex q.group.Crypto.Dh.g;
      Bigint.to_hex q.dh_public;
      q.nonce;
      q.signature;
      Crypto.Rsa.public_to_string q.ak;
      q.ak_endorsement;
      q.ek_cert.Crypto.Rsa.subject;
      Crypto.Rsa.public_to_string q.ek_cert.Crypto.Rsa.key;
      q.ek_cert.Crypto.Rsa.issuer;
      q.ek_cert.Crypto.Rsa.signature;
    ]

let public_of_string s =
  match String.split_on_char ':' s with
  | [ "rsa"; n; e ] -> begin
    match (Bigint.of_hex n, Bigint.of_hex e) with
    | n, e -> Ok { Crypto.Rsa.n; e }
    | exception Invalid_argument _ -> Error "malformed RSA key"
  end
  | _ -> Error "malformed RSA key"

let quote_of_bytes s =
  let ( let* ) = Result.bind in
  let* fields = Wire.decode ~expect:12 s in
  match fields with
  | [ measurement; p; g; dh_public; nonce; signature; ak; ak_endorsement; subject; ek_key; issuer; ek_sig ] -> begin
    let* ak = public_of_string ak in
    let* ek_key = public_of_string ek_key in
    match (Bigint.of_hex p, Bigint.of_hex g, Bigint.of_hex dh_public) with
    | p, g, dh_public ->
      Ok
        {
          measurement;
          group = { Crypto.Dh.p; g };
          dh_public;
          nonce;
          signature;
          ak;
          ak_endorsement;
          ek_cert = { Crypto.Rsa.subject; key = ek_key; issuer; signature = ek_sig };
        }
    | exception Invalid_argument _ -> Error "malformed group element"
  end
  | _ -> Error "wrong field count"
