open Nicsim

type t = { instr : Instructions.t; handle : Instructions.handle }

let of_handle instr handle = { instr; handle }
let handle t = t.handle
let id t = t.handle.Instructions.id

let principal t = Machine.Nf_code t.handle.Instructions.id
let m t = Instructions.machine t.instr

let first_core t =
  match t.handle.Instructions.cores with
  | c :: _ -> c
  | [] -> invalid_arg "Vnic: function has no cores"

let read_virt t ~vaddr ~len =
  Machine.load_bytes (m t) (principal t) (Machine.Virt { core = first_core t; vaddr }) ~len

let write_virt t ~vaddr s = Machine.store_bytes (m t) (principal t) (Machine.Virt { core = first_core t; vaddr }) s
let read_phys t ~paddr ~len = Machine.load_bytes (m t) (principal t) (Machine.Phys paddr) ~len
let write_phys t ~paddr s = Machine.store_bytes (m t) (principal t) (Machine.Phys paddr) s

let rx t = Pktio.rx_pop (Machine.pktio (m t)) ~nf:(id t)
let rx_depth t = Pktio.rx_depth (Machine.pktio (m t)) ~nf:(id t)

let rx_packet t =
  match rx t with
  | None -> Ok None
  | Some (addr, len) -> begin
    match read_phys t ~paddr:addr ~len with
    | Error f -> Error (Machine.fault_to_string f)
    | Ok frame -> begin
      match Net.Packet.parse (Bytes.of_string frame) with
      | Ok pkt -> Ok (Some (pkt, addr))
      | Error e ->
        Pktio.recycle (Machine.pktio (m t)) ~addr;
        Error (Format.asprintf "rx frame: %a" Net.Packet.pp_parse_error e)
    end
  end

let tx_packet t ~buffer pkt =
  let frame = Bytes.to_string (Net.Packet.serialize pkt) in
  if String.length frame > Physmem.page_size then Error "frame exceeds buffer page"
  else begin
    match write_phys t ~paddr:buffer frame with
    | Error f -> Error (Machine.fault_to_string f)
    | Ok () ->
      Pktio.transmit (Machine.pktio (m t)) ~nf:(id t) ~addr:buffer ~len:(String.length frame);
      Ok ()
  end

let drop t ~buffer = Pktio.recycle (Machine.pktio (m t)) ~addr:buffer

let owned_cluster t kind =
  match List.find_opt (fun (k, _) -> k = kind) t.handle.Instructions.clusters with
  | None -> Error (Printf.sprintf "function owns no %s cluster" (Accel.kind_name kind))
  | Some (_, cluster) -> Ok cluster

let submit_owned t kind ~now ~bytes =
  match owned_cluster t kind with
  | Error e -> Error e
  | Ok cluster ->
    let a = Machine.accel (m t) kind in
    let done_at = Accel.submit a ~cluster ~now ~bytes in
    (* An injected garbage completion is detectable (bad CRC/stripe), so
       it surfaces as an error rather than a silent wrong answer; a hang
       surfaces as a completion time past the watchdog horizon. *)
    if Accel.take_garbage a then Error (Printf.sprintf "%s cluster returned garbage output" (Accel.kind_name kind))
    else Ok done_at

let dpi_submit t ~now ~bytes = submit_owned t Accel.Dpi ~now ~bytes

let zip_compress t ~now data =
  Result.map
    (fun done_at -> (Accelfn.Lz77.compress data, done_at))
    (submit_owned t Accel.Zip ~now ~bytes:(String.length data))

let zip_decompress t ~now data =
  match submit_owned t Accel.Zip ~now ~bytes:(String.length data) with
  | Error e -> Error e
  | Ok done_at -> begin
    match Accelfn.Lz77.decompress data with
    | plain -> Ok (plain, done_at)
    | exception Invalid_argument e -> Error e
  end

(* Streaming variant: the engine pulls its input straight out of the
   function's RAM through the cluster's locked TLB bank and deposits the
   output the same way — the bulk datapath end to end, no staging strings
   in the caller. Offsets are region-relative (the cluster TLB maps the
   function's region at [vbase], same as the cores). *)
let stream_owned t kind ~now ~src_off ~src_len ~dst_off ~f =
  match owned_cluster t kind with
  | Error e -> Error e
  | Ok cluster -> begin
    let a = Machine.accel (m t) kind in
    let vbase = t.handle.Instructions.vbase in
    match
      Accel.stream a ~cluster ~now ~mem:(Machine.mem (m t)) ~src:(vbase + src_off) ~src_len
        ~dst:(vbase + dst_off) ~f
    with
    | Error e -> Error (Accel.stream_error_to_string e)
    | Ok (written, done_at) ->
      if Accel.take_garbage a then Error (Printf.sprintf "%s cluster returned garbage output" (Accel.kind_name kind))
      else Ok (written, done_at)
  end

let zip_compress_stream t ~now ~src_off ~src_len ~dst_off =
  stream_owned t Accel.Zip ~now ~src_off ~src_len ~dst_off ~f:Accelfn.Lz77.compress

let zip_decompress_stream t ~now ~src_off ~src_len ~dst_off =
  match stream_owned t Accel.Zip ~now ~src_off ~src_len ~dst_off ~f:Accelfn.Lz77.decompress with
  | r -> r
  | exception Invalid_argument e -> Error e

let raid_encode t ~now blocks =
  let bytes = Array.fold_left (fun acc b -> acc + String.length b) 0 blocks in
  match submit_owned t Accel.Raid ~now ~bytes with
  | Error e -> Error e
  | Ok done_at -> begin
    match Accelfn.Raid.encode blocks with
    | s -> Ok (s, done_at)
    | exception Invalid_argument e -> Error e
  end

let dma t ~direction ~nic_off ~host_off ~len =
  let bank = first_core t in
  Dma.transfer ~checked:true (Machine.dma (m t)) ~bank ~direction
    ~nic_addr:(t.handle.Instructions.vbase + nic_off) ~host_addr:host_off ~len
  |> Result.map_error Dma.error_to_string

let dma_to_host t ~nic_off ~host_off ~len = dma t ~direction:Dma.To_host ~nic_off ~host_off ~len
let dma_from_host t ~nic_off ~host_off ~len = dma t ~direction:Dma.To_nic ~nic_off ~host_off ~len

type run_stats = { received : int; forwarded : int; dropped : int; faults : int }

let process t (nf : Nf.Types.t) ~max =
  let stats = ref { received = 0; forwarded = 0; dropped = 0; faults = 0 } in
  let continue = ref true in
  while !continue && !stats.received < max do
    match rx_packet t with
    | Ok None -> continue := false
    | Error _ -> stats := { !stats with received = !stats.received + 1; faults = !stats.faults + 1 }
    | Ok (Some (pkt, buffer)) -> begin
      stats := { !stats with received = !stats.received + 1 };
      match nf.Nf.Types.process pkt with
      | Nf.Types.Drop _ ->
        drop t ~buffer;
        stats := { !stats with dropped = !stats.dropped + 1 }
      | Nf.Types.Forward pkt' -> begin
        match tx_packet t ~buffer pkt' with
        | Ok () -> stats := { !stats with forwarded = !stats.forwarded + 1 }
        | Error _ ->
          drop t ~buffer;
          stats := { !stats with faults = !stats.faults + 1 }
      end
    end
  done;
  !stats
