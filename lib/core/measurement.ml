type t = Crypto.Sha256.ctx

let start () = Crypto.Sha256.init ()

let field ctx tag payload =
  Crypto.Sha256.feed ctx (Printf.sprintf "%s:%d:" tag (String.length payload));
  Crypto.Sha256.feed ctx payload

let record_image ctx image = field ctx "image" image
let record_cores ctx cores = field ctx "cores" (String.concat "," (List.map string_of_int cores))
let record_memory ctx ~base ~len = field ctx "mem" (Printf.sprintf "%x+%x" base len)

let opt f = function None -> "*" | Some v -> f v
let prefix_str (p, l) = Printf.sprintf "%s/%d" (Net.Ipv4_addr.to_string p) l

let record_rule ctx (r : Nicsim.Pktio.rule_match) =
  field ctx "rule"
    (String.concat "|"
       [
         opt prefix_str r.src_prefix;
         opt prefix_str r.dst_prefix;
         opt string_of_int r.proto;
         opt string_of_int r.src_port;
         opt string_of_int r.dst_port;
         opt string_of_int r.vni;
       ])

let record_accel ctx ~kind ~clusters =
  field ctx "accel" (Printf.sprintf "%s:%d" (Nicsim.Accel.kind_name kind) clusters)

let record_vpp ctx ~rx_bytes ~tx_bytes ~sched =
  field ctx "vpp" (Printf.sprintf "%d/%d/%s" rx_bytes tx_bytes (Nicsim.Sched.policy_name sched))

let finish = Crypto.Sha256.finalize

let of_config ~image ~cores ~mem_base ~mem_len ~rules ~accels ~rx_bytes ~tx_bytes ~sched =
  let m = start () in
  record_image m image;
  record_cores m cores;
  record_memory m ~base:mem_base ~len:mem_len;
  List.iter (record_rule m) rules;
  List.iter (fun (kind, clusters) -> record_accel m ~kind ~clusters) accels;
  record_vpp m ~rx_bytes ~tx_bytes ~sched;
  finish m
