let encode fields =
  let buf = Buffer.create 256 in
  List.iter
    (fun f ->
      let n = String.length f in
      for i = 3 downto 0 do
        Buffer.add_char buf (Char.chr ((n lsr (8 * i)) land 0xff))
      done;
      Buffer.add_string buf f)
    fields;
  Buffer.contents buf

let decode ~expect s =
  let n = String.length s in
  let rec go pos acc count =
    if count = expect then if pos = n then Ok (List.rev acc) else Error "trailing bytes after last field"
    else if pos + 4 > n then Error "truncated length prefix"
    else begin
      let len =
        (Char.code s.[pos] lsl 24) lor (Char.code s.[pos + 1] lsl 16) lor (Char.code s.[pos + 2] lsl 8)
        lor Char.code s.[pos + 3]
      in
      if pos + 4 + len > n then Error "truncated field"
      else go (pos + 4 + len) (String.sub s (pos + 4) len :: acc) (count + 1)
    end
  in
  go 0 [] 0
