(** Tiny length-prefixed wire format for attestation messages that cross
    the (untrusted) network: each field is a 4-byte big-endian length
    followed by its bytes. Decoding is strict — trailing garbage and
    truncation are errors. *)

val encode : string list -> string

(** [decode ~expect s] returns exactly [expect] fields or an error. *)
val decode : expect:int -> string -> (string list, string) result
