(** The Appendix A attestation handshake as an explicit four-message wire
    protocol, suitable for running over an untrusted transport:

    {v
    verifier -> prover : HELLO(nonce)
    prover  -> verifier: QUOTE(measurement, DH params, g^x, signature, cert chain)
    verifier-> prover  : SHARE(g^y)
    prover  -> verifier: FINISHED(HMAC(key, transcript))
    v}

    After FINISHED verifies, both sides hold the same fresh symmetric key
    and the verifier knows exactly which function, on which (vendor-
    certified) S-NIC, holds the other end. Every message is a strict
    {!Wire} encoding; any tampering surfaces as a decode, signature or
    MAC failure. *)

module Verifier : sig
  type t

  (** [start rng ~vendor_public ?expected_measurement ()] returns the
      state and the HELLO bytes to send. *)
  val start :
    Random.State.t -> vendor_public:Crypto.Rsa.public -> ?expected_measurement:string -> unit -> t * string

  (** [on_quote t bytes] validates the QUOTE and returns the SHARE bytes
      to send back. *)
  val on_quote : t -> string -> (string, string) result

  (** [on_finished t bytes] checks the prover's key confirmation. *)
  val on_finished : t -> string -> (unit, string) result

  (** The session key; available after [on_quote] succeeds. *)
  val key : t -> string option

  val peer_measurement : t -> string option
end

module Prover : sig
  type t

  val create : Random.State.t -> Attestation.attester -> t

  (** [on_hello t bytes] returns the QUOTE bytes. *)
  val on_hello : t -> string -> (string, string) result

  (** [on_share t bytes] derives the key and returns the FINISHED
      bytes. *)
  val on_share : t -> string -> (string, string) result

  val key : t -> string option
end

(** [handshake rng ~vendor_public ?expected_measurement attester] runs
    the whole exchange in-process (test/demo convenience); returns the
    two ends' keys. *)
val handshake :
  Random.State.t ->
  vendor_public:Crypto.Rsa.public ->
  ?expected_measurement:string ->
  Attestation.attester ->
  (string * string, string) result
