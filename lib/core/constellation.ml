type endpoint = { name : string; attester : Attestation.attester; vendor_name : string }

let of_nf ?name api vnic =
  let instr = Api.instructions api in
  match Attestation.attester_of_nf instr ~id:(Vnic.id vnic) with
  | Error e -> invalid_arg ("Constellation.of_nf: " ^ Instructions.error_to_string e)
  | Ok attester ->
    {
      name = (match name with Some n -> n | None -> Printf.sprintf "nf-%d" (Vnic.id vnic));
      attester;
      vendor_name = Identity.vendor_name (Api.vendor api);
    }

let enclave ?(seed = 0xE14) ~vendor ~name ~code () =
  let identity = Identity.manufacture ~seed vendor ~serial:("enclave-" ^ name) in
  {
    name;
    attester = { Attestation.identity; measurement = Crypto.Sha256.digest code };
    vendor_name = Identity.vendor_name vendor;
  }

let name e = e.name
let measurement e = e.attester.Attestation.measurement

type channel = { key : string; mutable next_send : int64 array; mutable next_recv : int64 array }

type error = Attestation_failed of { prover : string; reason : string } | Unknown_vendor of string

let error_to_string = function
  | Attestation_failed { prover; reason } -> Printf.sprintf "attestation of %s failed: %s" prover reason
  | Unknown_vendor v -> "no trust root for vendor: " ^ v

(* One direction: [verifier] challenges [prover]; returns the shared key. *)
let attest_one rng ~trusted_vendors ~expected prover =
  match List.find_opt (fun v -> Identity.vendor_name v = prover.vendor_name) trusted_vendors with
  | None -> Error (Unknown_vendor prover.vendor_name)
  | Some vendor -> begin
    let nonce = String.init 16 (fun _ -> Char.chr (Random.State.int rng 256)) in
    let responder, quote = Attestation.respond rng prover.attester ~nonce in
    match
      Attestation.verify rng ~vendor_public:(Identity.vendor_public vendor) ?expected_measurement:expected ~nonce
        quote
    with
    | Error e -> Error (Attestation_failed { prover = prover.name; reason = Attestation.verify_error_to_string e })
    | Ok verified ->
      let prover_key = Attestation.responder_key responder ~verifier_share:verified.Attestation.verifier_share in
      (* Both sides now hold the same key; assert the protocol's own
         consistency before using it. *)
      assert (String.equal prover_key verified.Attestation.key);
      Ok verified.Attestation.key
  end

let connect rng ~trusted_vendors ?expected_a ?expected_b a b =
  let ( let* ) = Result.bind in
  (* a verifies b, then b verifies a; the channel key binds both
     directions. *)
  let* k_ab = attest_one rng ~trusted_vendors ~expected:expected_b b in
  let* k_ba = attest_one rng ~trusted_vendors ~expected:expected_a a in
  let key = Crypto.Hmac.derive ~secret:(k_ab ^ k_ba) ~label:"constellation-channel" in
  Ok { key; next_send = [| 0L; 0L |]; next_recv = [| 0L; 0L |] }

let send ch ~from payload =
  if from <> 0 && from <> 1 then invalid_arg "Constellation.send: from must be 0 or 1";
  let seq = ch.next_send.(from) in
  ch.next_send.(from) <- Int64.add seq 1L;
  (* The nonce encodes direction and sequence number. *)
  let nonce = Int64.logor (Int64.shift_left (Int64.of_int from) 62) seq in
  Crypto.Cipher.seal ~key:ch.key ~nonce payload

let recv ch ~at ciphertext =
  if at <> 0 && at <> 1 then invalid_arg "Constellation.recv: at must be 0 or 1";
  let from = 1 - at in
  let seq = ch.next_recv.(from) in
  let nonce = Int64.logor (Int64.shift_left (Int64.of_int from) 62) seq in
  match Crypto.Cipher.open_ ~key:ch.key ~nonce ciphertext with
  | None -> Error "authentication failed (tampered, replayed or out of order)"
  | Some pt ->
    ch.next_recv.(from) <- Int64.add seq 1L;
    Ok pt

let channel_key ch = ch.key
