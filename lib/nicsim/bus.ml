type policy = Free_for_all | Temporal of { epoch : int; dead : int }
type stats = { ops : int; busy_cycles : int; wait_cycles : int }

type t = {
  policy : policy;
  clients : int;
  mutable busy_until : int; (* FCFS serialization for Free_for_all *)
  client_busy_until : int array; (* per-slot-owner serialization for Temporal *)
  per_client : stats array;
  mutable faults : Faults.t option;
  mutable sink : Obs.sink;
  mutable track_base : int;
}

(* An injected wedge holds the requester's op this long past its normal
   completion — far beyond any epoch, so health probes can spot it. *)
let timeout_penalty = 100_000

let create ~policy ~clients =
  if clients <= 0 then invalid_arg "Bus.create: need at least one client";
  (match policy with
  | Temporal { epoch; dead } when dead < 0 || dead >= epoch -> invalid_arg "Bus.create: need 0 <= dead < epoch"
  | _ -> ());
  {
    policy;
    clients;
    busy_until = 0;
    client_busy_until = Array.make clients 0;
    per_client = Array.make clients { ops = 0; busy_cycles = 0; wait_cycles = 0 };
    faults = None;
    sink = Obs.null;
    track_base = 0;
  }

let set_faults t f = t.faults <- Some f

let set_sink t sink ~track_base =
  t.sink <- sink;
  t.track_base <- track_base

let record t client ~now ~start ~cost =
  let s = t.per_client.(client) in
  t.per_client.(client) <-
    { ops = s.ops + 1; busy_cycles = s.busy_cycles + cost; wait_cycles = s.wait_cycles + (start - now) }

let request t ~client ~now ~cost =
  if client < 0 || client >= t.clients then invalid_arg "Bus.request: bad client";
  if cost <= 0 then invalid_arg "Bus.request: cost must be positive";
  let start =
    match t.policy with
    | Free_for_all -> max now t.busy_until
    | Temporal { epoch; dead } ->
      if cost > epoch - dead then invalid_arg "Bus.request: cost exceeds usable epoch";
      (* Earliest time >= lower bound lying in one of [client]'s slots,
         within the slot's issue window. *)
      let rec find tmin =
        let e = tmin / epoch in
        let slot_start = e * epoch in
        let window_end = slot_start + (epoch - dead) - cost in
        if e mod t.clients = client && tmin <= window_end then tmin
        else begin
          (* Advance to the start of the next slot we own (a full rotation
             away when we just missed our own issue window). *)
          let delta = (client - (e mod t.clients) + t.clients) mod t.clients in
          let delta = if delta = 0 then t.clients else delta in
          find ((e + delta) * epoch)
        end
      in
      find (max now t.client_busy_until.(client))
  in
  let cost =
    match t.faults with
    | None -> cost
    | Some f -> (
      match
        Faults.fire f ~device:"bus" Faults.Bus_timeout
          ~detail:(Printf.sprintf "client=%d cost=%d wedged" client cost)
      with
      | Some _ -> cost + timeout_penalty
      | None -> cost)
  in
  (match t.policy with
  | Free_for_all -> t.busy_until <- start + cost
  | Temporal _ ->
    (* A client's own ops serialize; other clients' slots are untouched —
       the dead time guarantees in-flight ops drain before a slot change,
       so no cross-client state is needed. A wedged op therefore stalls
       only its owner: temporal partitioning contains the gray failure. *)
    t.client_busy_until.(client) <- start + cost);
  record t client ~now ~start ~cost;
  let track = t.track_base + client in
  Obs.count t.sink Obs.Bus_grant;
  if start > now then begin
    Obs.count t.sink Obs.Bus_stall;
    Obs.instant t.sink ~ts:now ~track Obs.Bus "bus_stall" ~arg:(start - now)
  end;
  Obs.span_begin t.sink ~ts:start ~track Obs.Bus "bus_op" ~arg:cost;
  Obs.span_end t.sink ~ts:(start + cost) ~track Obs.Bus "bus_op" ~arg:cost;
  Obs.observe t.sink "snic_bus_wait_cycles" (float_of_int (start - now));
  start + cost

let stats t ~client = t.per_client.(client)
let policy t = t.policy
let clients t = t.clients

let worst_case_interference t =
  match t.policy with
  | Free_for_all -> None
  | Temporal { epoch; dead } -> Some (((t.clients - 1) * epoch) + dead)
