type rule_match = {
  src_prefix : (Net.Ipv4_addr.t * int) option;
  dst_prefix : (Net.Ipv4_addr.t * int) option;
  proto : int option;
  src_port : int option;
  dst_port : int option;
  vni : int option;
}

let match_any = { src_prefix = None; dst_prefix = None; proto = None; src_port = None; dst_port = None; vni = None }

type reservation = { mutable rx_bytes : int; mutable tx_bytes : int }

type t = {
  mem : Physmem.t;
  alloc : Alloc.t;
  rx_capacity : int;
  tx_capacity : int;
  mutable rules : (rule_match * int) list; (* insertion order *)
  rings : (int, (int * int) Sched.t) Hashtbl.t; (* nf -> rx descriptors *)
  reservations : (int, reservation) Hashtbl.t;
  mutable wire : Bytes.t list; (* reversed *)
  mutable drops : int;
  mutable faults : Faults.t option;
  mutable sink : Obs.sink;
  mutable track : int;
}

let create mem alloc ~rx_buffer_bytes ~tx_buffer_bytes =
  {
    mem;
    alloc;
    rx_capacity = rx_buffer_bytes;
    tx_capacity = tx_buffer_bytes;
    rules = [];
    rings = Hashtbl.create 16;
    reservations = Hashtbl.create 16;
    wire = [];
    drops = 0;
    faults = None;
    sink = Obs.null;
    track = 0;
  }

let set_faults t f = t.faults <- Some f

let set_sink t sink ~track =
  t.sink <- sink;
  t.track <- track;
  (* Hash-order iteration is fine here: redirecting every ring's sink is
     idempotent and order-insensitive — no artifact records the order. *)
  Hashtbl.iter (fun _ ring -> Sched.set_sink ring sink ~track) t.rings

(* Every drop funnels through here so the counter and the trace instant
   cannot drift apart. *)
let drop t =
  t.drops <- t.drops + 1;
  Obs.count t.sink Obs.Pktio_drop;
  Obs.instant t.sink ~ts:(Obs.seq t.sink) ~track:t.track Obs.Pktio "pktio_drop" ~arg:t.drops

let add_rule t ~m ~nf = t.rules <- t.rules @ [ (m, nf) ]
let remove_rules_for t ~nf = t.rules <- List.filter (fun (_, n) -> n <> nf) t.rules

(* These folds are pure sums over int fields: addition commutes, so
   [Hashtbl.fold]'s hash-order visit cannot change the result. *)
let reserved_rx t = Hashtbl.fold (fun _ r acc -> acc + r.rx_bytes) t.reservations 0
let reserved_tx t = Hashtbl.fold (fun _ r acc -> acc + r.tx_bytes) t.reservations 0
let rx_available t = t.rx_capacity - reserved_rx t
let tx_available t = t.tx_capacity - reserved_tx t

let reserve ?(sched = Sched.Fifo) t ~nf ~rx_bytes ~tx_bytes =
  if Hashtbl.mem t.reservations nf then Error "NF already has a packet pipeline"
  else if rx_bytes > rx_available t then Error "insufficient RX port buffer space"
  else if tx_bytes > tx_available t then Error "insufficient TX port buffer space"
  else begin
    Hashtbl.replace t.reservations nf { rx_bytes; tx_bytes };
    let ring = Sched.create sched in
    Sched.set_sink ring t.sink ~track:t.track;
    Hashtbl.replace t.rings nf ring;
    Ok ()
  end

let scheduler_of t ~nf = Option.map Sched.policy (Hashtbl.find_opt t.rings nf)

let release t ~nf =
  (* Free any queued buffers before dropping the ring. *)
  (match Hashtbl.find_opt t.rings nf with
  | Some q -> Sched.iter (fun (addr, _) -> Alloc.free t.alloc addr) q
  | None -> ());
  Hashtbl.remove t.reservations nf;
  Hashtbl.remove t.rings nf;
  remove_rules_for t ~nf

let rule_matches m (p : Net.Packet.t) ~vni =
  let pf = Net.Packet.flow p in
  (match m.src_prefix with None -> true | Some (pr, l) -> Net.Ipv4_addr.in_prefix pf.src_ip ~prefix:pr ~len:l)
  && (match m.dst_prefix with None -> true | Some (pr, l) -> Net.Ipv4_addr.in_prefix pf.dst_ip ~prefix:pr ~len:l)
  && (match m.proto with None -> true | Some pr -> pr = pf.proto)
  && (match m.src_port with None -> true | Some sp -> sp = pf.src_port)
  && (match m.dst_port with None -> true | Some dp -> dp = pf.dst_port)
  && match m.vni with None -> true | Some v -> vni = Some v

(* Link-level gray failures at ingress: a dropped frame never reaches the
   switch; a corrupted frame continues with one bit flipped (in a copy),
   to be caught downstream by the NF's checksum verification. *)
let rx_fault t frame =
  match t.faults with
  | None -> Ok frame
  | Some f -> (
    let len = Bytes.length frame in
    match Faults.fire f ~device:"pktio" Faults.Rx_drop ~detail:(Printf.sprintf "len=%d dropped at ingress" len) with
    | Some _ -> Error "injected RX drop"
    | None -> (
      match Faults.fire f ~device:"pktio" Faults.Rx_corrupt ~detail:(Printf.sprintf "len=%d bit-flip at ingress" len) with
      | None -> Ok frame
      | Some _ ->
        let frame = Bytes.copy frame in
        let byte = Faults.draw_int f len and bit = Faults.draw_int f 8 in
        Bytes.set frame byte (Char.chr (Char.code (Bytes.get frame byte) lxor (1 lsl bit)));
        Ok frame))

(* The per-frame pipeline, minus the RX counter: [deliver] counts each
   success as it happens, [deliver_batch] counts once per batch.  All
   other observable effects (drops, faults, allocator and scheduler
   state) are per-frame in both paths. *)
let deliver_frame t frame =
  match rx_fault t frame with
  | Error e ->
    drop t;
    Error e
  | Ok frame -> (
  match Net.Packet.parse ~verify_checksums:false frame with
  | Error e ->
    drop t;
    Error (Format.asprintf "unparseable frame: %a" Net.Packet.pp_parse_error e)
  | Ok pkt -> begin
    let vni = match Net.Vxlan.decapsulate pkt with Ok { vni; _ } -> Some vni | Error _ -> None in
    match List.find_opt (fun (m, _) -> rule_matches m pkt ~vni) t.rules with
    | None ->
      drop t;
      Error "no switching rule matches"
    | Some (_, nf) -> begin
      match Hashtbl.find_opt t.rings nf with
      | None ->
        drop t;
        Error "destination NF has no packet pipeline"
      | Some ring -> begin
        let len = Bytes.length frame in
        match Alloc.alloc t.alloc ~owner:(Physmem.Nf nf) len with
        | None ->
          drop t;
          Error "buffer pool exhausted"
        | Some addr ->
          (* Bulk enqueue: the frame lands in DRAM via the page-granular
             blit, with no intermediate string copy. *)
          Physmem.blit_from_bytes t.mem ~pos:addr frame ~off:0 ~len;
          (* Scheduler metadata: flow key + size; packets to well-known
             (privileged) ports ride the high-priority class. *)
          let flow = Net.Packet.flow pkt in
          let meta =
            {
              Sched.flow = Net.Five_tuple.hash flow;
              bytes = len;
              level = (if flow.Net.Five_tuple.dst_port < 1024 then 0 else 1);
              weight = 1;
            }
          in
          Sched.enqueue ring meta (addr, len);
          Ok nf
      end
    end
  end)

let deliver t frame =
  match deliver_frame t frame with
  | Ok nf ->
    Obs.count t.sink Obs.Pktio_rx;
    Ok nf
  | Error _ as e -> e

let deliver_batch t frames =
  let queued = ref 0 and rejected = ref 0 in
  List.iter
    (fun frame ->
      match deliver_frame t frame with Ok _ -> incr queued | Error _ -> incr rejected)
    frames;
  (* One amortized counter bump covers the whole batch; totals match the
     per-frame path exactly. *)
  if !queued > 0 then Obs.count_n t.sink Obs.Pktio_rx !queued;
  (!queued, !rejected)

let rx_pop t ~nf =
  match Hashtbl.find_opt t.rings nf with
  | None -> None
  | Some q -> Sched.dequeue q

let rx_depth t ~nf = match Hashtbl.find_opt t.rings nf with None -> 0 | Some q -> Sched.length q

let transmit t ~nf:_ ~addr ~len =
  let dropped =
    match t.faults with
    | None -> false
    | Some f ->
      Faults.fire f ~device:"pktio" Faults.Tx_drop ~detail:(Printf.sprintf "len=%d eaten at egress" len) <> None
  in
  if dropped then drop t
  else begin
    (* Bulk dequeue: drain the buffer straight into the wire frame. *)
    let frame = Bytes.create len in
    Physmem.blit_to_bytes t.mem ~pos:addr frame ~off:0 ~len;
    t.wire <- frame :: t.wire;
    Obs.count t.sink Obs.Pktio_tx
  end;
  Alloc.free t.alloc addr

let wire_out t = List.rev t.wire
let drop_count t = t.drops

let recycle t ~addr = Alloc.free t.alloc addr

let deliver_to t ~nf frame =
  match Hashtbl.find_opt t.rings nf with
  | None -> Error "destination NF has no packet pipeline"
  | Some ring -> begin
    let len = Bytes.length frame in
    match Alloc.alloc t.alloc ~owner:(Physmem.Nf nf) len with
    | None ->
      drop t;
      Error "buffer pool exhausted"
    | Some addr ->
      Physmem.blit_from_bytes t.mem ~pos:addr frame ~off:0 ~len;
      let meta =
        match Net.Packet.parse ~verify_checksums:false frame with
        | Ok pkt ->
          let flow = Net.Packet.flow pkt in
          {
            Sched.flow = Net.Five_tuple.hash flow;
            bytes = len;
            level = (if flow.Net.Five_tuple.dst_port < 1024 then 0 else 1);
            weight = 1;
          }
        | Error _ -> { Sched.flow = 0; bytes = len; level = 1; weight = 1 }
      in
      Sched.enqueue ring meta (addr, len);
      Obs.count t.sink Obs.Pktio_rx;
      Ok ()
  end
