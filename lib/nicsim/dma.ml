type bank = { up : Tlb.t; down : Tlb.t }

type t = {
  nic_mem : Physmem.t;
  host_mem : Physmem.t;
  banks : bank array;
  mutable faults : Faults.t option;
  mutable stall_cycles : int;
  mutable sink : Obs.sink;
  mutable track_base : int;
}

let create ~nic_mem ~host_mem ~banks =
  if banks <= 0 then invalid_arg "Dma.create: need at least one bank";
  {
    nic_mem;
    host_mem;
    banks = Array.init banks (fun _ -> { up = Tlb.create ~capacity:8 (); down = Tlb.create ~capacity:8 () });
    faults = None;
    stall_cycles = 0;
    sink = Obs.null;
    track_base = 0;
  }

let set_sink t sink ~track_base =
  t.sink <- sink;
  t.track_base <- track_base

let banks t = Array.length t.banks
let host_mem t = t.host_mem
let up_tlb t ~bank = t.banks.(bank).up
let down_tlb t ~bank = t.banks.(bank).down
let set_faults t f = t.faults <- Some f
let stall_cycles t = t.stall_cycles

let reset_bank t ~bank =
  t.banks.(bank) <- { up = Tlb.create ~capacity:8 (); down = Tlb.create ~capacity:8 () }

type direction = To_host | To_nic

type error = Violation of string | Fault of Faults.fault_event

let error_to_string = function
  | Violation msg -> msg
  | Fault ev -> Printf.sprintf "DMA fault (%s)" (Faults.event_to_string ev)

(* The whole [vaddr, vaddr+len) range must translate to contiguous
   physical addresses; checking page-stride boundaries plus the final byte
   suffices because TLB entries map contiguous power-of-two windows. *)
let translate_range tlb ~vaddr ~len ~access =
  match Tlb.translate tlb ~vaddr ~access with
  | None -> None
  | Some p0 ->
    let ok = ref true in
    let off = ref Physmem.page_size in
    while !ok && !off < len do
      (match Tlb.translate tlb ~vaddr:(vaddr + !off) ~access with
      | Some p when p = p0 + !off -> ()
      | Some _ | None -> ok := false);
      off := !off + Physmem.page_size
    done;
    (match Tlb.translate tlb ~vaddr:(vaddr + len - 1) ~access with
    | Some p when p = p0 + len - 1 -> ()
    | Some _ | None -> ok := false);
    if !ok then Some p0 else None

let transfer_unobserved ~checked t ~bank ~direction ~nic_addr ~host_addr ~len =
  let b = t.banks.(bank) in
  let resolve tlb vaddr ~access =
    if not checked then Ok vaddr
    else begin
      match translate_range tlb ~vaddr ~len ~access with
      | Some p -> Ok p
      | None -> Error (Violation "DMA window violation")
    end
  in
  let nic_access = match direction with To_host -> Tlb.Read | To_nic -> Tlb.Write in
  let host_access = match direction with To_host -> Tlb.Write | To_nic -> Tlb.Read in
  match (resolve b.up nic_addr ~access:nic_access, resolve b.down host_addr ~access:host_access) with
  | Ok nic_p, Ok host_p -> (
    (* Gray failures strike the engine itself, after the window checks:
       an armed plan can fail the transfer, stall the engine, or flip a
       single bit of the payload in flight. *)
    let fail =
      match t.faults with
      | None -> None
      | Some f ->
        let detail =
          Printf.sprintf "bank=%d %s len=%d" bank (match direction with To_host -> "to-host" | To_nic -> "to-nic") len
        in
        (match Faults.fire f ~device:"dma" Faults.Dma_error ~detail with
        | Some ev -> Some ev
        | None ->
          (match Faults.fire f ~device:"dma" Faults.Dma_stall ~detail with
          | Some _ -> t.stall_cycles <- t.stall_cycles + 1_000 + Faults.draw_int f 9_000
          | None -> ());
          None)
    in
    match fail with
    | Some ev -> Error (Fault ev)
    | None ->
      (* One staging buffer, filled and drained by the page-granular bulk
         path: the whole transfer costs O(len/4096) page resolutions, not
         one hash lookup per byte. The in-flight bit flip lands on the
         same (byte, bit) draw as the legacy string-copy path. *)
      let buf = Bytes.create len in
      (match direction with
      | To_host -> Physmem.blit_to_bytes t.nic_mem ~pos:nic_p buf ~off:0 ~len
      | To_nic -> Physmem.blit_to_bytes t.host_mem ~pos:host_p buf ~off:0 ~len);
      (match t.faults with
      | None -> ()
      | Some f -> (
        match
          Faults.fire f ~device:"dma" Faults.Dma_corrupt
            ~detail:(Printf.sprintf "bank=%d len=%d bit-flip in flight" bank len)
        with
        | None -> ()
        | Some _ ->
          let byte = Faults.draw_int f len and bit = Faults.draw_int f 8 in
          Bytes.set buf byte (Char.chr (Char.code (Bytes.get buf byte) lxor (1 lsl bit)))));
      (match direction with
      | To_host -> Physmem.blit_from_bytes t.host_mem ~pos:host_p buf ~off:0 ~len
      | To_nic -> Physmem.blit_from_bytes t.nic_mem ~pos:nic_p buf ~off:0 ~len);
      Ok ())
  | Error e, _ | _, Error e -> Error e

(* The DMA engine has no cycle clock, so the span timestamps are the
   recorder's deterministic sequence numbers: ordering is faithful,
   durations are not meaningful.  One track per bank keeps spans from
   overlapping within a track. *)
let transfer ~checked t ~bank ~direction ~nic_addr ~host_addr ~len =
  if bank < 0 || bank >= Array.length t.banks then invalid_arg "Dma.transfer: bad bank";
  if len <= 0 then invalid_arg "Dma.transfer: bad length";
  let track = t.track_base + bank in
  let name = match direction with To_host -> "dma_to_host" | To_nic -> "dma_to_nic" in
  Obs.count t.sink Obs.Dma_start;
  Obs.span_begin t.sink ~ts:(Obs.seq t.sink) ~track Obs.Dma name ~arg:len;
  let result = transfer_unobserved ~checked t ~bank ~direction ~nic_addr ~host_addr ~len in
  (match result with
  | Ok () -> Obs.count t.sink Obs.Dma_complete
  | Error (Violation _) ->
    Obs.count t.sink Obs.Dma_fault;
    Obs.instant t.sink ~ts:(Obs.seq t.sink) ~track Obs.Dma "dma_violation" ~arg:len
  | Error (Fault _) ->
    Obs.count t.sink Obs.Dma_fault;
    Obs.instant t.sink ~ts:(Obs.seq t.sink) ~track Obs.Dma "dma_fault" ~arg:len);
  Obs.span_end t.sink ~ts:(Obs.seq t.sink) ~track Obs.Dma name ~arg:len;
  result
