type owner = Free | Nic_os | Nf of int

let page_bits = 12
let page_size = 1 lsl page_bits

type t = {
  size : int;
  pages : (int, Bytes.t) Hashtbl.t; (* page index -> 4 KB backing *)
  owners : (int, owner) Hashtbl.t; (* page index -> owner; absent = Free *)
  mutable resolutions : int; (* page-table lookups served (bench counter) *)
}

let create ~size =
  if size <= 0 || size land (page_size - 1) <> 0 then invalid_arg "Physmem.create: size must be page-aligned";
  { size; pages = Hashtbl.create 4096; owners = Hashtbl.create 4096; resolutions = 0 }

let size t = t.size
let resolutions t = t.resolutions

(* [pos + len > t.size] wraps to a negative number when [len] is near
   max_int — exactly the hostile descriptor lengths the §3.3 attack
   replays construct — so the bound is checked without the addition. *)
let check t pos len =
  if pos < 0 || len < 0 || pos > t.size || len > t.size - pos then
    invalid_arg
      (if pos >= 0 && len >= 0 && pos <= max_int - len then
         Printf.sprintf "Physmem: access [%#x, %#x) outside DRAM of %#x bytes" pos (pos + len) t.size
       else Printf.sprintf "Physmem: access at %#x of length %#x overflows the address space" pos len)

let find_page t idx =
  t.resolutions <- t.resolutions + 1;
  Hashtbl.find_opt t.pages idx

let page t idx =
  t.resolutions <- t.resolutions + 1;
  match Hashtbl.find_opt t.pages idx with
  | Some b -> b
  | None ->
    let b = Bytes.make page_size '\000' in
    Hashtbl.add t.pages idx b;
    b

let read_u8 t pos =
  check t pos 1;
  match find_page t (pos lsr page_bits) with
  | None -> 0
  | Some b -> Char.code (Bytes.get b (pos land (page_size - 1)))

let write_u8 t pos v =
  check t pos 1;
  Bytes.set (page t (pos lsr page_bits)) (pos land (page_size - 1)) (Char.chr (v land 0xff))

(* DRAM rot primitive for fault injection: flips one bit in place,
   bypassing ownership — exactly what a cosmic ray does. *)
let flip_bit t ~pos ~bit =
  if bit < 0 || bit > 7 then invalid_arg "Physmem.flip_bit: bit must be in 0..7";
  write_u8 t pos (read_u8 t pos lxor (1 lsl bit))

(* The walker behind every bulk operation: visit each 4 KB page covering
   [pos, pos+len) exactly once, so an N-byte access costs O(N/4096) page
   resolutions instead of O(N) hash lookups. [f] receives the page
   index, the offset within that page, the offset within the caller's
   buffer, and the chunk length. Callers must [check] first. *)
let iter_chunks ~pos ~len f =
  let i = ref pos in
  while !i < pos + len do
    let page_off = !i land (page_size - 1) in
    let n = min (page_size - page_off) (pos + len - !i) in
    f (!i lsr page_bits) ~page_off ~buf_off:(!i - pos) ~n;
    i := !i + n
  done

let check_buf fn buf ~off ~len =
  if off < 0 || len < 0 || off > Bytes.length buf - len then
    invalid_arg (Printf.sprintf "Physmem.%s: range [%d, %d) outside buffer of %d bytes" fn off (off + len) (Bytes.length buf))

(* Sparse-page invariant: a page absent from the table reads as zeroes
   and is materialized only by a write, so bulk reads of never-written
   ranges fill from the implicit zero page without allocating it. *)
let blit_to_bytes t ~pos buf ~off ~len =
  check t pos len;
  check_buf "blit_to_bytes" buf ~off ~len;
  iter_chunks ~pos ~len (fun idx ~page_off ~buf_off ~n ->
      match find_page t idx with
      | None -> Bytes.fill buf (off + buf_off) n '\000'
      | Some b -> Bytes.blit b page_off buf (off + buf_off) n)

let blit_from_bytes t ~pos buf ~off ~len =
  check t pos len;
  check_buf "blit_from_bytes" buf ~off ~len;
  iter_chunks ~pos ~len (fun idx ~page_off ~buf_off ~n -> Bytes.blit buf (off + buf_off) (page t idx) page_off n)

let zero_range t ~pos ~len =
  check t pos len;
  (* Drop fully covered pages (restoring the sparse zero page); clear
     partial edges in place. *)
  iter_chunks ~pos ~len (fun idx ~page_off ~buf_off:_ ~n ->
      if page_off = 0 && n = page_size then Hashtbl.remove t.pages idx
      else begin
        match find_page t idx with
        | None -> ()
        | Some b -> Bytes.fill b page_off n '\000'
      end)

let fill t ~pos ~len c =
  if c = '\000' then zero_range t ~pos ~len
  else begin
    check t pos len;
    iter_chunks ~pos ~len (fun idx ~page_off ~buf_off:_ ~n -> Bytes.fill (page t idx) page_off n c)
  end

let read_u64 t pos =
  check t pos 8;
  let off = pos land (page_size - 1) in
  if off <= page_size - 8 then begin
    (* Common case: the word sits inside one page — one resolution.
       [to_int] keeps the low 63 bits, matching the legacy byte-at-a-time
       assembly in OCaml int arithmetic. *)
    match find_page t (pos lsr page_bits) with
    | None -> 0
    | Some b -> Int64.to_int (Bytes.get_int64_le b off)
  end
  else begin
    let v = ref 0 in
    for i = 7 downto 0 do
      v := (!v lsl 8) lor read_u8 t (pos + i)
    done;
    !v
  end

let write_u64 t pos v =
  check t pos 8;
  let off = pos land (page_size - 1) in
  if off <= page_size - 8 then
    (* Mask to 63 bits so byte 7 matches the legacy [(v lsr 56) land 0xff]
       encoding (lsr on a 63-bit int never produces the sign bit). *)
    Bytes.set_int64_le (page t (pos lsr page_bits)) off (Int64.logand (Int64.of_int v) 0x7FFF_FFFF_FFFF_FFFFL)
  else
    for i = 0 to 7 do
      write_u8 t (pos + i) ((v lsr (8 * i)) land 0xff)
    done

let read_bytes t ~pos ~len =
  check t pos len;
  let buf = Bytes.create len in
  blit_to_bytes t ~pos buf ~off:0 ~len;
  Bytes.unsafe_to_string buf

let write_bytes t ~pos s =
  let len = String.length s in
  check t pos len;
  iter_chunks ~pos ~len (fun idx ~page_off ~buf_off ~n -> Bytes.blit_string s buf_off (page t idx) page_off n)

(* Scrub verification walks pages, not bytes: absent pages are zero by
   the sparse invariant, present pages are scanned within their backing. *)
let is_zero t ~pos ~len =
  if len = 0 then true
  else begin
    check t pos len;
    let ok = ref true in
    iter_chunks ~pos ~len (fun idx ~page_off ~buf_off:_ ~n ->
        if !ok then begin
          match find_page t idx with
          | None -> ()
          | Some b ->
            for i = page_off to page_off + n - 1 do
              if Bytes.unsafe_get b i <> '\000' then ok := false
            done
        end);
    !ok
  end

let owner_of t pos =
  check t pos 1;
  Option.value ~default:Free (Hashtbl.find_opt t.owners (pos lsr page_bits))

let owner_equal a b = a = b

let set_owner t ~pos ~len owner =
  check t pos len;
  if pos land (page_size - 1) <> 0 || len land (page_size - 1) <> 0 then
    invalid_arg "Physmem.set_owner: range must be page-aligned";
  for idx = pos lsr page_bits to ((pos + len) lsr page_bits) - 1 do
    match owner with Free -> Hashtbl.remove t.owners idx | o -> Hashtbl.replace t.owners idx o
  done

(* Sorted, because [Hashtbl.fold] visits in hash order, which differs
   across OCaml versions and hash seeds: scrub/verify and teardown walk
   this list, and an unsorted walk would be nondeterministic. *)
let pages_owned t owner =
  Hashtbl.fold (fun idx o acc -> if o = owner then idx :: acc else acc) t.owners [] |> List.sort compare

let owned_ranges t owner =
  let idxs = pages_owned t owner in
  (* Coalesce consecutive page indices into runs. *)
  let rec runs acc = function
    | [] -> List.rev acc
    | idx :: rest -> begin
      match acc with
      | (start, len) :: tl when start + len = idx lsl page_bits -> runs ((start, len + page_size) :: tl) rest
      | _ -> runs ((idx lsl page_bits, page_size) :: acc) rest
    end
  in
  runs [] idxs

let pp_owner fmt = function
  | Free -> Format.pp_print_string fmt "free"
  | Nic_os -> Format.pp_print_string fmt "nic-os"
  | Nf id -> Format.fprintf fmt "nf-%d" id
