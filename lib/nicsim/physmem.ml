type owner = Free | Nic_os | Nf of int

let page_bits = 12
let page_size = 1 lsl page_bits

type t = {
  size : int;
  pages : (int, Bytes.t) Hashtbl.t; (* page index -> 4 KB backing *)
  owners : (int, owner) Hashtbl.t; (* page index -> owner; absent = Free *)
}

let create ~size =
  if size <= 0 || size land (page_size - 1) <> 0 then invalid_arg "Physmem.create: size must be page-aligned";
  { size; pages = Hashtbl.create 4096; owners = Hashtbl.create 4096 }

let size t = t.size

let check t pos len =
  if pos < 0 || len < 0 || pos + len > t.size then
    invalid_arg (Printf.sprintf "Physmem: access [%#x, %#x) outside DRAM of %#x bytes" pos (pos + len) t.size)

let page t idx =
  match Hashtbl.find_opt t.pages idx with
  | Some b -> b
  | None ->
    let b = Bytes.make page_size '\000' in
    Hashtbl.add t.pages idx b;
    b

let read_u8 t pos =
  check t pos 1;
  match Hashtbl.find_opt t.pages (pos lsr page_bits) with
  | None -> 0
  | Some b -> Char.code (Bytes.get b (pos land (page_size - 1)))

let write_u8 t pos v =
  check t pos 1;
  Bytes.set (page t (pos lsr page_bits)) (pos land (page_size - 1)) (Char.chr (v land 0xff))

(* DRAM rot primitive for fault injection: flips one bit in place,
   bypassing ownership — exactly what a cosmic ray does. *)
let flip_bit t ~pos ~bit =
  if bit < 0 || bit > 7 then invalid_arg "Physmem.flip_bit: bit must be in 0..7";
  write_u8 t pos (read_u8 t pos lxor (1 lsl bit))

let read_u64 t pos =
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor read_u8 t (pos + i)
  done;
  !v

let write_u64 t pos v =
  for i = 0 to 7 do
    write_u8 t (pos + i) ((v lsr (8 * i)) land 0xff)
  done

let read_bytes t ~pos ~len =
  check t pos len;
  String.init len (fun i -> Char.chr (read_u8 t (pos + i)))

let write_bytes t ~pos s =
  check t pos (String.length s);
  String.iteri (fun i c -> write_u8 t (pos + i) (Char.code c)) s

let zero_range t ~pos ~len =
  check t pos len;
  (* Drop fully covered pages; clear partial edges. *)
  let i = ref pos in
  while !i < pos + len do
    let idx = !i lsr page_bits in
    let off = !i land (page_size - 1) in
    let n = min (page_size - off) (pos + len - !i) in
    if off = 0 && n = page_size then Hashtbl.remove t.pages idx
    else begin
      match Hashtbl.find_opt t.pages idx with
      | None -> ()
      | Some b -> Bytes.fill b off n '\000'
    end;
    i := !i + n
  done

let is_zero t ~pos ~len =
  let ok = ref true in
  for i = pos to pos + len - 1 do
    if read_u8 t i <> 0 then ok := false
  done;
  !ok

let owner_of t pos =
  check t pos 1;
  Option.value ~default:Free (Hashtbl.find_opt t.owners (pos lsr page_bits))

let owner_equal a b = a = b

let set_owner t ~pos ~len owner =
  check t pos len;
  if pos land (page_size - 1) <> 0 || len land (page_size - 1) <> 0 then
    invalid_arg "Physmem.set_owner: range must be page-aligned";
  for idx = pos lsr page_bits to ((pos + len) lsr page_bits) - 1 do
    match owner with Free -> Hashtbl.remove t.owners idx | o -> Hashtbl.replace t.owners idx o
  done

let owned_ranges t owner =
  let idxs =
    Hashtbl.fold (fun idx o acc -> if o = owner then idx :: acc else acc) t.owners []
    |> List.sort compare
  in
  (* Coalesce consecutive page indices into runs. *)
  let rec runs acc = function
    | [] -> List.rev acc
    | idx :: rest -> begin
      match acc with
      | (start, len) :: tl when start + len = idx lsl page_bits -> runs ((start, len + page_size) :: tl) rest
      | _ -> runs ((idx lsl page_bits, page_size) :: acc) rest
    end
  in
  runs [] idxs

let pp_owner fmt = function
  | Free -> Format.pp_print_string fmt "free"
  | Nic_os -> Format.pp_print_string fmt "nic-os"
  | Nf id -> Format.fprintf fmt "nf-%d" id
