(** A whole SoC smart NIC, assembled, with mode-dependent memory
    protection.

    Modes model the §3.2 commodity architectures plus S-NIC:
    - [Liquidio_se_s]: every NF runs privileged; xkphys gives raw
      physical access to everything.
    - [Liquidio_se_um]: Linux-style kernel; NFs get virtual memory, and
      optionally xkphys ([nf_xkphys]) for fast paths.
    - [Agilio]: no translation at all — all memory accessed by raw
      physical address, by anyone.
    - [Bluefield]: TrustZone. NF memory is secure-world memory: other
      (normal-world) NFs are blocked, but the secure-world NIC OS can
      still read and write every NF's state.
    - [Snic]: single-owner semantics — an NF touches only pages it owns
      (locked TLBs), and the NIC OS is repelled from NF pages by the
      memory denylist (§4.2).

    The ISA-level attacks of §3.3 are expressed directly against this
    interface; the machine decides, per mode, which of them succeed. *)

type mode = Liquidio_se_s | Liquidio_se_um of { nf_xkphys : bool } | Agilio | Bluefield | Snic

val mode_name : mode -> string

type principal = Os | Nf_code of int

type fault =
  | Tlb_fault of int (* vaddr *)
  | Denied of { principal : principal; addr : int; reason : string }

val pp_fault : Format.formatter -> fault -> unit
val fault_to_string : fault -> string

type t

type config = {
  mode : mode;
  cores : int; (* programmable cores *)
  dram_bytes : int;
  l2 : Cache.t;
  bus : Bus.t;
  accels : Accel.t list;
  host_mem_bytes : int;
  rx_buffer_bytes : int;
  tx_buffer_bytes : int;
}

val default_config : mode:mode -> config
val create : config -> t

(** [set_faults t plan] arms one gray-failure plan across every device of
    this NIC (DMA engine, packet IO, bus arbiter, accelerators) — all
    draw from the same seeded stream, so one seed reproduces the whole
    machine's fault schedule. Unarmed machines behave exactly as before. *)
val set_faults : t -> Faults.t -> unit

val faults : t -> Faults.t option

(** [set_sink t sink] points every device of this NIC (L2, bus, DMA,
    accelerators, packet IO, core TLBs — including TLBs created later by
    teardown paths) at one trace sink, each device on its own track, and
    names the tracks.  The default is {!Obs.null}: instrumentation then
    costs one branch per emit site.  Use [Obs.for_process sink ~pid]
    before calling to give each NIC of a fleet its own process lane. *)
val set_sink : t -> Obs.sink -> unit

(** The machine's current sink ({!Obs.null} unless {!set_sink} ran). *)
val sink : t -> Obs.sink

(** Track number of the control-plane (API) span lane. *)
val track_ctrl : int

(** [set_qos t q] attaches a per-tenant credit arbiter (see {!Qos}) to
    this NIC and routes it to the machine's sink on the QoS tracks.
    Opt-in: the bare machine never consults it — fleets and scenarios
    route tenant traffic through the [Qos] fronting wrappers, so the
    security-isolation semantics of the raw device API are unchanged. *)
val set_qos : t -> Qos.t -> unit

val qos : t -> Qos.t option
(** The attached arbiter, if any. *)

val mode : t -> mode
val mem : t -> Physmem.t
val cores : t -> int
val l2 : t -> Cache.t
val bus : t -> Bus.t
val alloc : t -> Alloc.t
val pktio : t -> Pktio.t
val dma : t -> Dma.t
val accel : t -> Accel.kind -> Accel.t

(** Core management. *)
val bind_core : t -> core:int -> nf:int -> unit

val unbind_cores : t -> nf:int -> unit
val core_tlb : t -> core:int -> Tlb.t
val core_owner : t -> core:int -> int option
val free_cores : t -> int list

(** Mark pages as BlueField secure-world memory. *)
val set_secure : t -> pos:int -> len:int -> bool -> unit

(** {2 Accelerator MMIO}

    Each accelerator cluster's configuration registers (rule-graph
    pointer, instruction-queue pointer, ...) are memory-mapped into one
    DRAM page (§3.1/§4.3). On commodity NICs any core can write them —
    the basis of accelerator hijacking; S-NIC's nf_launch transfers the
    page to the owning function so nobody else can reconfigure its
    threads. *)

val accel_mmio_base : t -> kind:Accel.kind -> cluster:int -> int

(** Register offsets within an MMIO page. *)
val mmio_reg_graph : int

val mmio_reg_iq : int

(** S-NIC management-core denylist (maintained automatically from page
    ownership when [mode = Snic]; exposed for tests). *)
val os_denied : t -> int -> bool

(** {2 Read-only introspection}

    Ground-truth state queries for external checkers (the model-based
    oracle of [lib/oracle]). None of these consult the mode's access
    policy and none mutate anything — they answer "what is", not "who
    may". *)

(** Owner of the 4 KB page containing a physical address. *)
val page_owner : t -> int -> Physmem.owner

(** BlueField: is the page containing this address secure-world memory? *)
val secure_page : t -> int -> bool

(** Snapshot of a core TLB's installed entries (most recent first). *)
val tlb_entries : t -> core:int -> Tlb.entry list

(** {2 Memory access, checked per mode} *)

type addressing = Virt of { core : int; vaddr : int } | Phys of int

val load_u8 : t -> principal -> addressing -> (int, fault) result
val store_u8 : t -> principal -> addressing -> int -> (unit, fault) result
val load_u64 : t -> principal -> addressing -> (int, fault) result
val store_u64 : t -> principal -> addressing -> int -> (unit, fault) result
val load_bytes : t -> principal -> addressing -> len:int -> (string, fault) result
val store_bytes : t -> principal -> addressing -> string -> (unit, fault) result
