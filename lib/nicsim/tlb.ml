type entry = { vbase : int; pbase : int; size : int; writable : bool }
type access = Read | Write

type t = {
  mutable entries : entry list;
  mutable locked : bool;
  capacity : int;
  mutable sink : Obs.sink;
  mutable track : int;
}

let create ?(capacity = 512) () =
  { entries = []; locked = false; capacity; sink = Obs.null; track = 0 }

let set_sink t sink ~track =
  t.sink <- sink;
  t.track <- track

let is_pow2 n = n > 0 && n land (n - 1) = 0

let overlaps a b =
  let a_end = a.vbase + a.size and b_end = b.vbase + b.size in
  a.vbase < b_end && b.vbase < a_end

let install t e =
  if t.locked then invalid_arg "Tlb.install: TLB is locked";
  if not (is_pow2 e.size) then invalid_arg "Tlb.install: size must be a power of two";
  if e.vbase land (e.size - 1) <> 0 || e.pbase land (e.size - 1) <> 0 then
    invalid_arg "Tlb.install: base not aligned to size";
  if List.exists (overlaps e) t.entries then invalid_arg "Tlb.install: overlapping mapping";
  if List.length t.entries >= t.capacity then invalid_arg "Tlb.install: TLB full";
  t.entries <- e :: t.entries

let page = 4096

let map_region t ~vbase ~pbase ~len ~writable =
  if vbase land (page - 1) <> 0 || pbase land (page - 1) <> 0 || len land (page - 1) <> 0 || len <= 0 then
    invalid_arg "Tlb.map_region: arguments must be page-aligned";
  let pow2_floor n =
    let rec go p = if p * 2 <= n then go (p * 2) else p in
    go 1
  in
  let align_of x = if x = 0 then max_int else x land (-x) in
  let rec go v p remaining count =
    if remaining = 0 then count
    else begin
      let size = min (min (align_of v) (align_of p)) (pow2_floor remaining) in
      install t { vbase = v; pbase = p; size; writable };
      go (v + size) (p + size) (remaining - size) (count + 1)
    end
  in
  go vbase pbase len 0

let lock t = t.locked <- true
let is_locked t = t.locked

exception Missed

(* Manual recursion instead of [List.find_opt] with a capturing closure:
   the hit path must not allocate beyond the returned option so the null
   sink keeps the hot path flat (asserted by test_obs). *)
let rec lookup vaddr entries =
  match entries with
  | [] -> raise_notrace Missed
  | e :: rest -> if vaddr >= e.vbase && vaddr < e.vbase + e.size then e else lookup vaddr rest

let miss t vaddr =
  Obs.count t.sink Obs.Tlb_miss;
  Obs.instant t.sink ~ts:(Obs.seq t.sink) ~track:t.track Obs.Tlb "tlb_miss" ~arg:vaddr;
  None

let translate t ~vaddr ~access =
  match lookup vaddr t.entries with
  | e ->
    if access = Read || e.writable then begin
      Obs.count t.sink Obs.Tlb_hit;
      Some (e.pbase + (vaddr - e.vbase))
    end
    else miss t vaddr
  | exception Missed -> miss t vaddr

(* Entries map contiguous windows, so one lookup answers for every byte
   up to the window's end: the bulk datapath translates once per entry
   run instead of once per byte. *)
let translate_run t ~vaddr ~len ~access =
  if len <= 0 then invalid_arg "Tlb.translate_run: length must be positive";
  match lookup vaddr t.entries with
  | e ->
    if access = Read || e.writable then begin
      Obs.count t.sink Obs.Tlb_hit;
      Some (e.pbase + (vaddr - e.vbase), min len (e.vbase + e.size - vaddr))
    end
    else miss t vaddr
  | exception Missed -> miss t vaddr

let entry_count t = List.length t.entries
let capacity t = t.capacity
let entries t = t.entries
let mapped_bytes t = List.fold_left (fun acc e -> acc + e.size) 0 t.entries
