type entry = { vbase : int; pbase : int; size : int; writable : bool }
type access = Read | Write

type t = { mutable entries : entry list; mutable locked : bool; capacity : int }

let create ?(capacity = 512) () = { entries = []; locked = false; capacity }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let overlaps a b =
  let a_end = a.vbase + a.size and b_end = b.vbase + b.size in
  a.vbase < b_end && b.vbase < a_end

let install t e =
  if t.locked then invalid_arg "Tlb.install: TLB is locked";
  if not (is_pow2 e.size) then invalid_arg "Tlb.install: size must be a power of two";
  if e.vbase land (e.size - 1) <> 0 || e.pbase land (e.size - 1) <> 0 then
    invalid_arg "Tlb.install: base not aligned to size";
  if List.exists (overlaps e) t.entries then invalid_arg "Tlb.install: overlapping mapping";
  if List.length t.entries >= t.capacity then invalid_arg "Tlb.install: TLB full";
  t.entries <- e :: t.entries

let page = 4096

let map_region t ~vbase ~pbase ~len ~writable =
  if vbase land (page - 1) <> 0 || pbase land (page - 1) <> 0 || len land (page - 1) <> 0 || len <= 0 then
    invalid_arg "Tlb.map_region: arguments must be page-aligned";
  let pow2_floor n =
    let rec go p = if p * 2 <= n then go (p * 2) else p in
    go 1
  in
  let align_of x = if x = 0 then max_int else x land (-x) in
  let rec go v p remaining count =
    if remaining = 0 then count
    else begin
      let size = min (min (align_of v) (align_of p)) (pow2_floor remaining) in
      install t { vbase = v; pbase = p; size; writable };
      go (v + size) (p + size) (remaining - size) (count + 1)
    end
  in
  go vbase pbase len 0

let lock t = t.locked <- true
let is_locked t = t.locked

let translate t ~vaddr ~access =
  let hit e = vaddr >= e.vbase && vaddr < e.vbase + e.size in
  match List.find_opt hit t.entries with
  | Some e when access = Read || e.writable -> Some (e.pbase + (vaddr - e.vbase))
  | Some _ | None -> None

let entry_count t = List.length t.entries
let capacity t = t.capacity
let entries t = t.entries
let mapped_bytes t = List.fold_left (fun acc e -> acc + e.size) 0 t.entries
