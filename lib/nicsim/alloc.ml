type t = {
  mem : Physmem.t;
  base : int;
  heap_base : int;
  heap_size : int;
  max_entries : int;
  mutable bump : int; (* next free heap offset *)
}

let magic = "SNICALOC"
let desc_size = 32
let header_size = 16

let metadata_base t = t.base
let heap_base t = t.heap_base
let heap_size t = t.heap_size

let owner_code = function Physmem.Nic_os -> 0 | Physmem.Nf k -> k + 1 | Physmem.Free -> invalid_arg "Alloc: Free owner"

let init mem ~base ~heap_base ~heap_size ~max_entries =
  let meta_len = header_size + (max_entries * desc_size) in
  Physmem.write_bytes mem ~pos:base magic;
  Physmem.write_u64 mem (base + 8) 0;
  let page = Physmem.page_size in
  let align v = (v + page - 1) land lnot (page - 1) in
  Physmem.set_owner mem ~pos:(base land lnot (page - 1)) ~len:(align meta_len + page) Physmem.Nic_os;
  { mem; base; heap_base; heap_size; max_entries; bump = 0 }

let entry_count t = Physmem.read_u64 t.mem (t.base + 8)
let set_entry_count t n = Physmem.write_u64 t.mem (t.base + 8) n
let desc_addr t i = t.base + header_size + (i * desc_size)

let read_desc t i =
  let d = desc_addr t i in
  ( Physmem.read_u64 t.mem d,
    Physmem.read_u64 t.mem (d + 8),
    Physmem.read_u64 t.mem (d + 16),
    Physmem.read_u64 t.mem (d + 24) )

let write_desc t i ~owner ~addr ~len ~in_use =
  let d = desc_addr t i in
  Physmem.write_u64 t.mem d owner;
  Physmem.write_u64 t.mem (d + 8) addr;
  Physmem.write_u64 t.mem (d + 16) len;
  Physmem.write_u64 t.mem (d + 24) (if in_use then 1 else 0)

let page_align v = (v + Physmem.page_size - 1) land lnot (Physmem.page_size - 1)

let alloc t ?(align = Physmem.page_size) ~owner len =
  if len <= 0 then invalid_arg "Alloc.alloc: non-positive length";
  if align <= 0 || align land (align - 1) <> 0 then invalid_arg "Alloc.alloc: alignment must be a power of two";
  let align = max align Physmem.page_size in
  let alen = page_align len in
  let n = entry_count t in
  (* Reuse a free slot of sufficient size and alignment first, else bump. *)
  let rec find_slot i =
    if i >= n then None
    else begin
      let _, addr, slot_len, in_use = read_desc t i in
      if in_use = 0 && slot_len >= alen && addr land (align - 1) = 0 then Some (i, addr, slot_len)
      else find_slot (i + 1)
    end
  in
  let slot =
    match find_slot 0 with
    (* Reuse keeps the slot's full extent: shrinking it would orphan the
       tail bytes forever. *)
    | Some (i, addr, slot_len) -> Some (i, addr, slot_len)
    | None ->
      let start = (t.heap_base + t.bump + align - 1) land lnot (align - 1) in
      let off = start - t.heap_base in
      if off + alen > t.heap_size || n >= t.max_entries then None
      else begin
        t.bump <- off + alen;
        set_entry_count t (n + 1);
        Some (n, start, alen)
      end
  in
  match slot with
  | None -> None
  | Some (i, addr, alen) ->
    write_desc t i ~owner:(owner_code owner) ~addr ~len:alen ~in_use:true;
    Physmem.set_owner t.mem ~pos:addr ~len:alen owner;
    Some addr

let free t addr =
  let n = entry_count t in
  let rec go i =
    if i >= n then invalid_arg "Alloc.free: unknown address"
    else begin
      let owner, a, len, in_use = read_desc t i in
      if a = addr && in_use = 1 then begin
        write_desc t i ~owner ~addr:a ~len ~in_use:false;
        Physmem.set_owner t.mem ~pos:a ~len Physmem.Free
      end
      else go (i + 1)
    end
  in
  go 0

let live t =
  let n = entry_count t in
  let rec go i acc =
    if i >= n then List.rev acc
    else begin
      let owner, addr, len, in_use = read_desc t i in
      if in_use = 1 then begin
        let o = if owner = 0 then Physmem.Nic_os else Physmem.Nf (owner - 1) in
        go (i + 1) ((o, addr, len) :: acc)
      end
      else go (i + 1) acc
    end
  in
  go 0 []
