(* Per-tenant credit arbiter over the shared Bus / Dma / Accel.

   The scheme, per resource, per epoch:

   - every registered tenant is entitled to [guarantee] credits;
     registration rejects over-subscription (sum of guarantees must fit
     the capacity), so a request inside the guarantee is granted
     unconditionally;
   - beyond its guarantee a tenant may borrow, but only from credit
     nobody else is still entitled to: the borrow condition reserves
     every other tenant's unreached guarantee, which is what makes the
     always-grant invariant above sound even after heavy borrowing;
   - unused guaranteed credit is donated to the next epoch's slack pool
     (clamped at one epoch's capacity) — work conservation: idle credit
     moves to whoever wants it, it is not destroyed.

   Everything is integer credits and deterministic; no randomness, no
   wall clock. *)

type resource = Bus | Dma | Accel

let n_resources = 3
let rix = function Bus -> 0 | Dma -> 1 | Accel -> 2
let resource_name = function Bus -> "bus" | Dma -> "dma" | Accel -> "accel"

type share = { guarantee : int; cap : int }

type limits = {
  bus : share;
  dma : share;
  accel : share;
  slo : int option;
}

let flat ~guarantee ~cap ?slo () =
  let s = { guarantee; cap } in
  { bus = s; dma = s; accel = s; slo }

type config = {
  epoch : int;
  bus_capacity : int;
  dma_capacity : int;
  accel_capacity : int;
}

type tstate = {
  limits : limits;
  used : int array; (* credits consumed this epoch, per resource *)
  granted : int array; (* cumulative credits granted, per resource *)
  mutable grants : int;
  mutable throttles : int;
  mutable borrows : int;
  mutable borrowed_credits : int;
  mutable lat_samples : float list;
  mutable n_samples : int;
  mutable slo_violations : int;
}

type t = {
  config : config;
  tenants : (int, tstate) Hashtbl.t;
  mutable epoch_idx : int;
  used_total : int array; (* credits granted this epoch, per resource *)
  reserved : int array; (* sum of registered guarantees, per resource *)
  slack : int array; (* credit donated into the current epoch *)
  mutable sink : Obs.sink;
  mutable track_base : int;
}

let capacity t r =
  match r with
  | Bus -> t.config.bus_capacity
  | Dma -> t.config.dma_capacity
  | Accel -> t.config.accel_capacity

let create config =
  if config.epoch <= 0 then invalid_arg "Qos.create: epoch must be positive";
  if config.bus_capacity <= 0 || config.dma_capacity <= 0 || config.accel_capacity <= 0 then
    invalid_arg "Qos.create: capacities must be positive";
  {
    config;
    tenants = Hashtbl.create 16;
    epoch_idx = 0;
    used_total = Array.make n_resources 0;
    reserved = Array.make n_resources 0;
    slack = Array.make n_resources 0;
    sink = Obs.null;
    track_base = 0;
  }

let config t = t.config

let set_sink t sink ~track_base =
  t.sink <- sink;
  t.track_base <- track_base;
  Obs.name_track sink ~track:track_base "qos bus";
  Obs.name_track sink ~track:(track_base + 1) "qos dma";
  Obs.name_track sink ~track:(track_base + 2) "qos accel"

let share_of ts r =
  match r with Bus -> ts.limits.bus | Dma -> ts.limits.dma | Accel -> ts.limits.accel

let register t ~tenant limits =
  let check name (s : share) =
    if s.guarantee < 0 then invalid_arg (Printf.sprintf "Qos.register: negative %s guarantee" name);
    if s.cap < s.guarantee then invalid_arg (Printf.sprintf "Qos.register: %s cap below guarantee" name)
  in
  check "bus" limits.bus;
  check "dma" limits.dma;
  check "accel" limits.accel;
  (match limits.slo with
  | Some s when s <= 0 -> invalid_arg "Qos.register: SLO must be positive"
  | _ -> ());
  (* Replacing a contract first returns the old guarantees to the pool. *)
  (match Hashtbl.find_opt t.tenants tenant with
  | Some old ->
    List.iter (fun r -> t.reserved.(rix r) <- t.reserved.(rix r) - (share_of old r).guarantee) [ Bus; Dma; Accel ]
  | None -> ());
  let over r g = t.reserved.(rix r) + g > capacity t r in
  if over Bus limits.bus.guarantee || over Dma limits.dma.guarantee || over Accel limits.accel.guarantee
  then begin
    (* Restore the old reservation before raising. *)
    (match Hashtbl.find_opt t.tenants tenant with
    | Some old ->
      List.iter (fun r -> t.reserved.(rix r) <- t.reserved.(rix r) + (share_of old r).guarantee) [ Bus; Dma; Accel ]
    | None -> ());
    invalid_arg "Qos.register: guarantees over-subscribe a resource"
  end;
  t.reserved.(0) <- t.reserved.(0) + limits.bus.guarantee;
  t.reserved.(1) <- t.reserved.(1) + limits.dma.guarantee;
  t.reserved.(2) <- t.reserved.(2) + limits.accel.guarantee;
  Hashtbl.replace t.tenants tenant
    {
      limits;
      used = Array.make n_resources 0;
      granted = Array.make n_resources 0;
      grants = 0;
      throttles = 0;
      borrows = 0;
      borrowed_credits = 0;
      lat_samples = [];
      n_samples = 0;
      slo_violations = 0;
    }

let registered t ~tenant = Hashtbl.mem t.tenants tenant
let tenants t = List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.tenants [])

let find t tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | Some ts -> ts
  | None -> invalid_arg (Printf.sprintf "Qos: tenant %d not registered" tenant)

(* Roll epoch state forward to the epoch containing [now].  Unused
   guaranteed credit becomes next-epoch slack, clamped at one epoch's
   capacity so donation cannot accumulate without bound. *)
let sync t ~now =
  let e = now / t.config.epoch in
  if e > t.epoch_idx then begin
    for r = 0 to n_resources - 1 do
      let donated = ref 0 in
      Hashtbl.iter
        (fun _ ts ->
          let g = (share_of ts (match r with 0 -> Bus | 1 -> Dma | _ -> Accel)).guarantee in
          if ts.used.(r) < g then donated := !donated + (g - ts.used.(r));
          ts.used.(r) <- 0)
        t.tenants;
      let cap =
        match r with 0 -> t.config.bus_capacity | 1 -> t.config.dma_capacity | _ -> t.config.accel_capacity
      in
      t.slack.(r) <- min cap !donated;
      t.used_total.(r) <- 0
    done;
    t.epoch_idx <- e
  end

type throttle = { tenant : int; resource : resource; until : int }
type verdict = Granted | Throttled of throttle

(* Credit still reserved for other tenants' unreached guarantees. *)
let reserved_others t ~tenant r =
  let acc = ref 0 in
  Hashtbl.iter
    (fun id ts ->
      if id <> tenant then begin
        let g = (share_of ts r).guarantee in
        if ts.used.(rix r) < g then acc := !acc + (g - ts.used.(rix r))
      end)
    t.tenants;
  !acc

let refuse t ts ~tenant ~resource ~now =
  ts.throttles <- ts.throttles + 1;
  let until = (t.epoch_idx + 1) * t.config.epoch in
  Obs.count t.sink Obs.Qos_throttle;
  Obs.instant t.sink ~ts:now ~track:(t.track_base + rix resource) Obs.Qos "qos_throttle" ~arg:tenant;
  Throttled { tenant; resource; until }

let admit t ~tenant ~resource ~cost ~now =
  if cost <= 0 then invalid_arg "Qos.admit: cost must be positive";
  sync t ~now;
  let ts = find t tenant in
  let r = rix resource in
  let { guarantee; cap } = share_of ts resource in
  let grant ~borrowed =
    ts.used.(r) <- ts.used.(r) + cost;
    ts.granted.(r) <- ts.granted.(r) + cost;
    t.used_total.(r) <- t.used_total.(r) + cost;
    ts.grants <- ts.grants + 1;
    Obs.count t.sink Obs.Qos_grant;
    if borrowed > 0 then begin
      ts.borrows <- ts.borrows + 1;
      ts.borrowed_credits <- ts.borrowed_credits + borrowed;
      Obs.count t.sink Obs.Qos_borrow
    end;
    Granted
  in
  if ts.used.(r) + cost > cap then refuse t ts ~tenant ~resource ~now
  else if ts.used.(r) + cost <= guarantee then grant ~borrowed:0
  else begin
    let others = reserved_others t ~tenant resource in
    if t.used_total.(r) + cost + others <= capacity t resource + t.slack.(r) then
      grant ~borrowed:(ts.used.(r) + cost - max ts.used.(r) guarantee)
    else refuse t ts ~tenant ~resource ~now
  end

let current_epoch t = t.epoch_idx
let epoch_granted t ~resource = t.used_total.(rix resource)
let epoch_slack t ~resource = t.slack.(rix resource)

(* ---------------- latency / SLO accounting ----------------------- *)

let note_latency t ~tenant ~cycles =
  let ts = find t tenant in
  ts.lat_samples <- float_of_int cycles :: ts.lat_samples;
  ts.n_samples <- ts.n_samples + 1;
  Obs.observe t.sink "qos_latency_cycles" (float_of_int cycles);
  match ts.limits.slo with
  | Some slo when cycles > slo ->
    ts.slo_violations <- ts.slo_violations + 1;
    Obs.count t.sink Obs.Slo_violation
  | _ -> ()

let latency_quantile t ~tenant ~q =
  let ts = find t tenant in
  Obs.Metrics.quantile_of_samples ts.lat_samples q

type tenant_stats = {
  grants : int;
  throttles : int;
  borrows : int;
  borrowed_credits : int;
  granted_bus : int;
  granted_dma : int;
  granted_accel : int;
  samples : int;
  slo_violations : int;
}

let stats t ~tenant =
  let ts = find t tenant in
  {
    grants = ts.grants;
    throttles = ts.throttles;
    borrows = ts.borrows;
    borrowed_credits = ts.borrowed_credits;
    granted_bus = ts.granted.(0);
    granted_dma = ts.granted.(1);
    granted_accel = ts.granted.(2);
    samples = ts.n_samples;
    slo_violations = ts.slo_violations;
  }

let granted_credits t ~tenant ~resource = (find t tenant).granted.(rix resource)

(* ---------------- fronting wrappers ------------------------------ *)

let bus_request t ~bus ~tenant ~client ~now ~cost =
  match admit t ~tenant ~resource:Bus ~cost ~now with
  | Throttled thr -> Error thr
  | Granted ->
    let completion = Bus.request bus ~client ~now ~cost in
    note_latency t ~tenant ~cycles:(completion - now);
    Ok completion

let dma_transfer t ~dma ~tenant ~now ~checked ~bank ~direction ~nic_addr ~host_addr ~len =
  match admit t ~tenant ~resource:Dma ~cost:len ~now with
  | Throttled thr -> Error thr
  | Granted -> Ok (Dma.transfer ~checked dma ~bank ~direction ~nic_addr ~host_addr ~len)

let accel_cost accel ~bytes =
  let kind = Accel.kind accel in
  Accel.overhead_cycles kind
  + int_of_float (ceil (float_of_int bytes *. Accel.cycles_per_byte kind))

let accel_submit t ~accel ~tenant ~cluster ~now ~bytes =
  match admit t ~tenant ~resource:Accel ~cost:(accel_cost accel ~bytes) ~now with
  | Throttled thr -> Error thr
  | Granted ->
    let completion = Accel.submit accel ~cluster ~now ~bytes in
    note_latency t ~tenant ~cycles:(completion - now);
    Ok completion

let accel_stream t ~accel ~tenant ~cluster ~now ~mem ~src ~src_len ~dst ~f =
  match admit t ~tenant ~resource:Accel ~cost:(accel_cost accel ~bytes:src_len) ~now with
  | Throttled thr -> Error thr
  | Granted ->
    let res = Accel.stream accel ~cluster ~now ~mem ~src ~src_len ~dst ~f in
    (match res with
    | Ok (_, completion) -> note_latency t ~tenant ~cycles:(completion - now)
    | Error _ -> ());
    Ok res
