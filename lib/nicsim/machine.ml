type mode = Liquidio_se_s | Liquidio_se_um of { nf_xkphys : bool } | Agilio | Bluefield | Snic

let mode_name = function
  | Liquidio_se_s -> "LiquidIO SE-S"
  | Liquidio_se_um { nf_xkphys } -> if nf_xkphys then "LiquidIO SE-UM (xkphys)" else "LiquidIO SE-UM"
  | Agilio -> "Agilio"
  | Bluefield -> "BlueField (TrustZone)"
  | Snic -> "S-NIC"

type principal = Os | Nf_code of int

type fault = Tlb_fault of int | Denied of { principal : principal; addr : int; reason : string }

let pp_principal fmt = function
  | Os -> Format.pp_print_string fmt "NIC OS"
  | Nf_code id -> Format.fprintf fmt "NF %d" id

let pp_fault fmt = function
  | Tlb_fault v -> Format.fprintf fmt "TLB fault at vaddr %#x" v
  | Denied { principal; addr; reason } -> Format.fprintf fmt "%a denied at %#x: %s" pp_principal principal addr reason

let fault_to_string f = Format.asprintf "%a" pp_fault f

type config = {
  mode : mode;
  cores : int;
  dram_bytes : int;
  l2 : Cache.t;
  bus : Bus.t;
  accels : Accel.t list;
  host_mem_bytes : int;
  rx_buffer_bytes : int;
  tx_buffer_bytes : int;
}

type t = {
  config : config;
  mem : Physmem.t;
  core_tlbs : Tlb.t array;
  core_owners : int option array;
  secure : (int, unit) Hashtbl.t; (* page idx -> BlueField secure world *)
  alloc : Alloc.t;
  pktio : Pktio.t;
  dma : Dma.t;
  mutable faults : Faults.t option;
  mutable sink : Obs.sink;
  mutable qos : Qos.t option;
}

let default_config ~mode =
  {
    mode;
    cores = 16;
    dram_bytes = 1 lsl 30; (* 1 GB of simulated DRAM *)
    l2 = Cache.create ~sets:4096 ~ways:16 ~line_bits:6 ~mode:(if mode = Snic then Cache.Hard else Cache.Shared) ~domains:16;
    bus =
      Bus.create
        ~policy:(if mode = Snic then Bus.Temporal { epoch = 96; dead = 16 } else Bus.Free_for_all)
        ~clients:16;
    accels =
      [
        Accel.create ~kind:Accel.Dpi ~threads:64 ~cluster_size:16;
        Accel.create ~kind:Accel.Zip ~threads:64 ~cluster_size:16;
        Accel.create ~kind:Accel.Raid ~threads:64 ~cluster_size:16;
      ];
    host_mem_bytes = 1 lsl 28;
    rx_buffer_bytes = 2 lsl 20;
    tx_buffer_bytes = 2 lsl 20;
  }

let mmio_base = 0x80000
let mmio_reg_graph = 0
let mmio_reg_iq = 8

let create config =
  let mem = Physmem.create ~size:config.dram_bytes in
  (* Fixed layout: allocator metadata at 64 KB, accelerator MMIO pages at
     512 KB, heap in the upper half. *)
  let heap_base = config.dram_bytes / 2 in
  let alloc = Alloc.init mem ~base:0x10000 ~heap_base ~heap_size:(config.dram_bytes - heap_base) ~max_entries:4096 in
  (* One MMIO page per accelerator cluster, owned by the NIC OS until an
     nf_launch hands it to a function. *)
  List.iteri
    (fun ai accel ->
      for c = 0 to Accel.cluster_count accel - 1 do
        Physmem.set_owner mem
          ~pos:(mmio_base + (((ai * 64) + c) * Physmem.page_size))
          ~len:Physmem.page_size Physmem.Nic_os
      done)
    config.accels;
  let host_mem = Physmem.create ~size:config.host_mem_bytes in
  {
    config;
    mem;
    core_tlbs = Array.init config.cores (fun _ -> Tlb.create ~capacity:512 ());
    core_owners = Array.make config.cores None;
    secure = Hashtbl.create 64;
    alloc;
    pktio = Pktio.create mem alloc ~rx_buffer_bytes:config.rx_buffer_bytes ~tx_buffer_bytes:config.tx_buffer_bytes;
    dma = Dma.create ~nic_mem:mem ~host_mem ~banks:config.cores;
    faults = None;
    sink = Obs.null;
    qos = None;
  }

(* One plan per machine: every device draws from the same seeded stream,
   so a seed reproduces the whole NIC's fault schedule. *)
let set_faults t f =
  t.faults <- Some f;
  Dma.set_faults t.dma f;
  Pktio.set_faults t.pktio f;
  Bus.set_faults t.config.bus f;
  List.iter (fun a -> Accel.set_faults a f) t.config.accels

let faults t = t.faults

(* Fixed track map within one machine's process lane (see
   OBSERVABILITY.md): 0 control plane, 1 L2, 2+core the core TLBs,
   100+client the bus, 200+bank the DMA banks, 300+ai*64+thread the
   accelerator threads, 900 the packet schedulers, 910 packet IO,
   920-922 the QoS arbiter's per-resource throttle lanes. *)
let track_ctrl = 0
let track_l2 = 1
let track_core_tlb core = 2 + core
let track_bus_base = 100
let track_dma_base = 200
let track_accel_base ai = 300 + (ai * 64)
let track_sched = 900
let track_pktio = 910
let track_qos_base = 920

(* Like [set_faults], one sink per machine: every device records into the
   same stream, each on its own track. *)
let set_sink t sink =
  t.sink <- sink;
  Cache.set_sink t.config.l2 sink ~track:track_l2;
  Obs.name_track sink ~track:track_l2 "l2-cache";
  Obs.name_track sink ~track:track_ctrl "ctrl";
  Obs.name_track sink ~track:track_sched "sched";
  Obs.name_track sink ~track:track_pktio "pktio";
  Bus.set_sink t.config.bus sink ~track_base:track_bus_base;
  for c = 0 to Bus.clients t.config.bus - 1 do
    Obs.name_track sink ~track:(track_bus_base + c) (Printf.sprintf "bus-client%d" c)
  done;
  Dma.set_sink t.dma sink ~track_base:track_dma_base;
  for b = 0 to Dma.banks t.dma - 1 do
    Obs.name_track sink ~track:(track_dma_base + b) (Printf.sprintf "dma-bank%d" b)
  done;
  List.iteri (fun ai a -> Accel.set_sink a sink ~track_base:(track_accel_base ai)) t.config.accels;
  Pktio.set_sink t.pktio sink ~track:track_pktio;
  Array.iteri
    (fun core tlb ->
      Tlb.set_sink tlb sink ~track:(track_core_tlb core);
      Obs.name_track sink ~track:(track_core_tlb core) (Printf.sprintf "core%d-tlb" core))
    t.core_tlbs;
  match t.qos with Some q -> Qos.set_sink q sink ~track_base:track_qos_base | None -> ()

let sink t = t.sink

(* The QoS arbiter is opt-in: fleets attach one per NIC and route the
   tenant datapath through the Qos fronting wrappers; the bare machine
   stays credit-free so the isolation oracle's alphabet is unchanged
   unless a campaign asks for credits. *)
let set_qos t q =
  t.qos <- Some q;
  if not (Obs.is_null t.sink) then Qos.set_sink q t.sink ~track_base:track_qos_base

let qos t = t.qos

let mode t = t.config.mode
let mem t = t.mem
let cores t = t.config.cores
let l2 t = t.config.l2
let bus t = t.config.bus
let alloc t = t.alloc
let pktio t = t.pktio
let dma t = t.dma

let accel t kind =
  match List.find_opt (fun a -> Accel.kind a = kind) t.config.accels with
  | Some a -> a
  | None -> invalid_arg ("Machine.accel: no such accelerator: " ^ Accel.kind_name kind)

let accel_mmio_base t ~kind ~cluster =
  let rec index i = function
    | [] -> invalid_arg ("Machine.accel_mmio_base: no such accelerator: " ^ Accel.kind_name kind)
    | a :: rest -> if Accel.kind a = kind then i else index (i + 1) rest
  in
  let ai = index 0 t.config.accels in
  if cluster < 0 || cluster >= Accel.cluster_count (accel t kind) then
    invalid_arg "Machine.accel_mmio_base: bad cluster";
  mmio_base + (((ai * 64) + cluster) * Physmem.page_size)

let bind_core t ~core ~nf =
  if core < 0 || core >= t.config.cores then invalid_arg "Machine.bind_core: bad core";
  match t.core_owners.(core) with
  | Some other when other <> nf -> invalid_arg (Printf.sprintf "Machine.bind_core: core %d is bound to NF %d" core other)
  | _ -> t.core_owners.(core) <- Some nf

let unbind_cores t ~nf =
  Array.iteri
    (fun i o ->
      if o = Some nf then begin
        t.core_owners.(i) <- None;
        let tlb = Tlb.create ~capacity:512 () in
        (* The fresh TLB keeps recording into the machine's sink. *)
        Tlb.set_sink tlb t.sink ~track:(track_core_tlb i);
        t.core_tlbs.(i) <- tlb;
        (* The core's DMA bank windows die with the binding. *)
        Dma.reset_bank t.dma ~bank:i
      end)
    t.core_owners

let core_tlb t ~core = t.core_tlbs.(core)
let core_owner t ~core = t.core_owners.(core)

let free_cores t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (if t.core_owners.(i) = None then i :: acc else acc) in
  go (t.config.cores - 1) []

let set_secure t ~pos ~len secure =
  let first = pos lsr Physmem.page_bits and last = (pos + len - 1) lsr Physmem.page_bits in
  for idx = first to last do
    if secure then Hashtbl.replace t.secure idx () else Hashtbl.remove t.secure idx
  done

let is_secure t addr = Hashtbl.mem t.secure (addr lsr Physmem.page_bits)

(* In S-NIC mode the denylist is exactly "pages owned by some NF": the
   nf_launch instruction moves pages into NF ownership and the hardware
   refuses OS accesses to them from that point on (§4.2). *)
let os_denied t addr =
  t.config.mode = Snic && (match Physmem.owner_of t.mem addr with Physmem.Nf _ -> true | _ -> false)

(* Read-only introspection for external checkers: ground truth, no
   policy, no mutation. *)
let page_owner t addr = Physmem.owner_of t.mem addr
let secure_page t addr = is_secure t addr
let tlb_entries t ~core = Tlb.entries t.core_tlbs.(core)

type addressing = Virt of { core : int; vaddr : int } | Phys of int

(* The single policy decision point: may [principal] touch physical
   address [paddr]? [via_tlb] records whether the access arrived through
   a core TLB (already confined) or as a raw physical address. *)
let check_phys t principal paddr ~via_tlb =
  let deny reason = Error (Denied { principal; addr = paddr; reason }) in
  match (t.config.mode, principal) with
  | (Liquidio_se_s | Agilio), _ -> Ok paddr
  | Liquidio_se_um _, Os -> Ok paddr
  | Liquidio_se_um { nf_xkphys }, Nf_code _ ->
    if via_tlb || nf_xkphys then Ok paddr else deny "xkphys disabled for functions"
  | Bluefield, Os -> Ok paddr (* the secure-world OS sees everything *)
  | Bluefield, Nf_code id ->
    if via_tlb then Ok paddr
    else if is_secure t paddr then begin
      (* Normal-world code cannot touch secure memory, not even its own;
         its own accesses come through the TLB path. *)
      deny (Printf.sprintf "TrustZone: secure memory not accessible to normal world (NF %d)" id)
    end
    else Ok paddr
  | Snic, Os -> if os_denied t paddr then deny "memory denylist: page belongs to a launched NF" else Ok paddr
  | Snic, Nf_code id -> begin
    match Physmem.owner_of t.mem paddr with
    | Physmem.Nf owner when owner = id -> Ok paddr
    | owner ->
      deny
        (Format.asprintf "single-owner RAM: page belongs to %a, not NF %d" Physmem.pp_owner owner id)
  end

let resolve t principal addressing ~write =
  match addressing with
  | Phys paddr -> check_phys t principal paddr ~via_tlb:false
  | Virt { core; vaddr } -> begin
    (match principal with
    | Nf_code id when t.core_owners.(core) <> Some id ->
      invalid_arg (Printf.sprintf "Machine: NF %d is not bound to core %d" id core)
    | _ -> ());
    match Tlb.translate t.core_tlbs.(core) ~vaddr ~access:(if write then Tlb.Write else Tlb.Read) with
    | None -> Error (Tlb_fault vaddr)
    | Some paddr -> check_phys t principal paddr ~via_tlb:true
  end

let ( let* ) = Result.bind

let load_u8 t principal addressing =
  let* paddr = resolve t principal addressing ~write:false in
  Ok (Physmem.read_u8 t.mem paddr)

let store_u8 t principal addressing v =
  let* paddr = resolve t principal addressing ~write:true in
  Ok (Physmem.write_u8 t.mem paddr v)

let advance addressing off = match addressing with Phys p -> Phys (p + off) | Virt { core; vaddr } -> Virt { core; vaddr = vaddr + off }

let load_u64 t principal addressing =
  let* paddr = resolve t principal addressing ~write:false in
  let* _ = resolve t principal (advance addressing 7) ~write:false in
  Ok (Physmem.read_u64 t.mem paddr)

let store_u64 t principal addressing v =
  let* paddr = resolve t principal addressing ~write:true in
  let* _ = resolve t principal (advance addressing 7) ~write:true in
  Ok (Physmem.write_u64 t.mem paddr v)

(* Bulk path: every policy in [check_phys] is a function of the 4 KB
   frame alone (ownership, the denylist and the secure set are all
   page-granular), so checking one byte per page is exactly equivalent
   to checking every byte; and a TLB entry maps a contiguous window, so
   one [translate_run] per entry is exactly equivalent to per-byte
   translation, faulting at the same first unmapped/denied address.
   [f paddr ~off ~n] consumes each checked page-bounded chunk. *)
let fold_chunks t principal addressing ~len ~write ~f =
  let page_mask = Physmem.page_size - 1 in
  (* Walk [n] bytes of a physically contiguous run, one chunk per page. *)
  let rec pages ~via_tlb paddr ~off n =
    if n <= 0 then Ok ()
    else begin
      match check_phys t principal paddr ~via_tlb with
      | Error e -> Error e
      | Ok _ ->
        let chunk = min n (Physmem.page_size - (paddr land page_mask)) in
        f paddr ~off ~n:chunk;
        pages ~via_tlb (paddr + chunk) ~off:(off + chunk) (n - chunk)
    end
  in
  match addressing with
  | Phys paddr -> pages ~via_tlb:false paddr ~off:0 len
  | Virt { core; vaddr } ->
    (match principal with
    | Nf_code id when t.core_owners.(core) <> Some id ->
      invalid_arg (Printf.sprintf "Machine: NF %d is not bound to core %d" id core)
    | _ -> ());
    let access = if write then Tlb.Write else Tlb.Read in
    let rec runs off =
      if off >= len then Ok ()
      else begin
        match Tlb.translate_run t.core_tlbs.(core) ~vaddr:(vaddr + off) ~len:(len - off) ~access with
        | None -> Error (Tlb_fault (vaddr + off))
        | Some (paddr, n) ->
          let* () = pages ~via_tlb:true paddr ~off n in
          runs (off + n)
      end
    in
    runs 0

let load_bytes t principal addressing ~len =
  if len < 0 then invalid_arg "Machine.load_bytes";
  let buf = Bytes.create len in
  let* () =
    fold_chunks t principal addressing ~len ~write:false ~f:(fun paddr ~off ~n ->
        Physmem.blit_to_bytes t.mem ~pos:paddr buf ~off ~len:n)
  in
  Ok (Bytes.unsafe_to_string buf)

let store_bytes t principal addressing s =
  let buf = Bytes.unsafe_of_string s in
  (* Each page is checked immediately before its chunk is copied, so a
     denied page aborts with every prior page already written — the same
     partial-write frontier as the legacy per-byte loop, whose first
     faulting byte is always a page boundary. *)
  fold_chunks t principal addressing ~len:(String.length s) ~write:true ~f:(fun paddr ~off ~n ->
      Physmem.blit_from_bytes t.mem ~pos:paddr buf ~off ~len:n)
