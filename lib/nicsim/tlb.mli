(** A small fully-associative TLB with lockable entries.

    S-NIC covers each NF's whole address space with a handful of
    variable-page-size entries configured by [nf_launch] and then locked
    read-only (§4.2); any later miss is a fatal NF bug. The same structure
    fronts virtualized accelerator clusters (§4.3), virtual packet
    pipelines and DMA banks (§4.4). *)

type entry = {
  vbase : int; (* virtual base, aligned to [size] *)
  pbase : int; (* physical base, aligned to [size] *)
  size : int; (* power-of-two bytes *)
  writable : bool;
}

type t

(** [create ?capacity ()] is an empty, unlocked TLB holding at most
    [capacity] entries (default 512). *)
val create : ?capacity:int -> unit -> t

(** [set_sink t sink ~track] directs this TLB's hit/miss counters and
    miss events at [sink], on trace track [track].  Fresh TLBs start on
    {!Obs.null}, which costs one branch per translate. *)
val set_sink : t -> Obs.sink -> track:int -> unit

(** [install t entry] adds a mapping. Raises [Invalid_argument] on
    misalignment, non-power-of-two size, overlap with an existing entry,
    or when the TLB is locked or full. *)
val install : t -> entry -> unit

(** [map_region t ~vbase ~pbase ~len ~writable] covers [len] bytes with a
    greedy sequence of aligned power-of-two entries (the variable-page-size
    packing of §4.2). [vbase], [pbase] and [len] must be page-aligned.
    Returns the number of entries installed. *)
val map_region : t -> vbase:int -> pbase:int -> len:int -> writable:bool -> int

(** After [lock t], installs fail. This models nf_launch setting the TLB
    read-only. *)
val lock : t -> unit

val is_locked : t -> bool

type access = Read | Write

(** [translate t ~vaddr ~access] is the physical address, or [None] on a
    miss / write to a read-only entry. *)
val translate : t -> vaddr:int -> access:access -> int option

(** [translate_run t ~vaddr ~len ~access] is [(paddr, n)] where [n <= len]
    bytes starting at [vaddr] are contiguously mapped by the entry
    covering [vaddr] — the bulk datapath's one-lookup-per-run primitive.
    [None] exactly when [translate] on [vaddr] would miss; a byte past
    the returned run may still be unmapped (call again at [vaddr + n]).
    Counts one hit per run rather than one per byte. *)
val translate_run : t -> vaddr:int -> len:int -> access:access -> (int * int) option

(** Number of entries currently installed. *)
val entry_count : t -> int

(** Maximum number of entries. *)
val capacity : t -> int

(** All installed entries, most recently installed first. *)
val entries : t -> entry list

(** Total virtual bytes mapped. *)
val mapped_bytes : t -> int
