(** Internal IO bus with pluggable arbitration.

    Commodity smart NICs have no bandwidth reservations on the internal
    bus, which both enables denial-of-service (§3.3, the Agilio
    [test_subsat] crash) and leaks timing (§4.5). S-NIC inserts trusted
    arbiters implementing temporal partitioning [Wang et al., HPCA'14]:
    time is sliced into epochs, each owned by one security domain, with a
    dead-time tail in which no new operation may issue so that in-flight
    operations drain before the slot changes hands. *)

type policy =
  | Free_for_all (* FCFS; whoever asks first occupies the bus *)
  | Temporal of { epoch : int; dead : int } (* cycles *)

type t

(** [create ~policy ~clients] builds an arbiter for [clients] security
    domains. For [Temporal], requires [0 <= dead < epoch]. *)
val create : policy:policy -> clients:int -> t

(** Arm a gray-failure plan: a request may wedge for {!timeout_penalty}
    extra cycles ([Faults.Bus_timeout]). Under [Temporal] the wedge
    stalls only the faulting client's own slot stream — partitioning
    contains it. Unarmed arbiters behave exactly as before. *)
val set_faults : t -> Faults.t -> unit

(** Extra completion delay of a wedged operation. *)
val timeout_penalty : int

(** [set_sink t sink ~track_base] traces every bus operation as a span on
    track [track_base + client] (one track per client, so spans never
    overlap within a track), emits stall instants when arbitration delays
    an issue, and feeds the [snic_bus_wait_cycles] histogram. *)
val set_sink : t -> Obs.sink -> track_base:int -> unit

(** [request t ~client ~now ~cost] schedules a [cost]-cycle bus operation
    issued at time [now]; returns its completion time. For [Temporal],
    requires [cost <= epoch - dead]. *)
val request : t -> client:int -> now:int -> cost:int -> int

(** Per-client accounting: operations issued, cycles spent occupying the
    bus, and cycles spent waiting for a grant. *)
type stats = { ops : int; busy_cycles : int; wait_cycles : int }

(** [stats t ~client] is the running tally for one client. *)
val stats : t -> client:int -> stats

(** The arbitration policy the bus was created with. *)
val policy : t -> policy

(** Number of client slots. *)
val clients : t -> int

(** Worst-case extra wait a well-behaved client can suffer from other
    clients, per operation: unbounded under [Free_for_all] (encoded as
    [None]), bounded by [(clients-1) * epoch + dead] under [Temporal]. *)
val worst_case_interference : t -> int option
