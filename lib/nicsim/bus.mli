(** Internal IO bus with pluggable arbitration.

    Commodity smart NICs have no bandwidth reservations on the internal
    bus, which both enables denial-of-service (§3.3, the Agilio
    [test_subsat] crash) and leaks timing (§4.5). S-NIC inserts trusted
    arbiters implementing temporal partitioning [Wang et al., HPCA'14]:
    time is sliced into epochs, each owned by one security domain, with a
    dead-time tail in which no new operation may issue so that in-flight
    operations drain before the slot changes hands. *)

type policy =
  | Free_for_all (* FCFS; whoever asks first occupies the bus *)
  | Temporal of { epoch : int; dead : int } (* cycles *)

type t

(** [create ~policy ~clients] builds an arbiter for [clients] security
    domains. For [Temporal], requires [0 <= dead < epoch]. *)
val create : policy:policy -> clients:int -> t

(** Arm a gray-failure plan: a request may wedge for {!timeout_penalty}
    extra cycles ([Faults.Bus_timeout]). Under [Temporal] the wedge
    stalls only the faulting client's own slot stream — partitioning
    contains it. Unarmed arbiters behave exactly as before. *)
val set_faults : t -> Faults.t -> unit

(** Extra completion delay of a wedged operation. *)
val timeout_penalty : int

(** [request t ~client ~now ~cost] schedules a [cost]-cycle bus operation
    issued at time [now]; returns its completion time. For [Temporal],
    requires [cost <= epoch - dead]. *)
val request : t -> client:int -> now:int -> cost:int -> int

type stats = { ops : int; busy_cycles : int; wait_cycles : int }

val stats : t -> client:int -> stats
val policy : t -> policy
val clients : t -> int

(** Worst-case extra wait a well-behaved client can suffer from other
    clients, per operation: unbounded under [Free_for_all] (encoded as
    [None]), bounded by [(clients-1) * epoch + dead] under [Temporal]. *)
val worst_case_interference : t -> int option
