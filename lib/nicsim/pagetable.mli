(** Two-level page tables stored in simulated DRAM — the §4.2 alternate
    design: instead of a handful of locked variable-size TLB entries, a
    programmable core carries a page-table pointer whose tables (and the
    pointer itself) become read-only after nf_launch.

    Layout: 4 KB pages and 8-byte PTEs, so each table page holds 512
    entries; virtual addresses decompose as [L1:9][L2:9][offset:12]
    (30-bit virtual space). PTE bit 0 = valid, bit 1 = writable; the
    physical page number lives in the address bits. *)

type access = Read | Write

(** [create mem ~alloc] starts an empty table; [alloc] provides fresh,
    zeroed, page-aligned table pages (e.g. from {!Alloc}). Returns the
    root's physical address. *)
val create : Physmem.t -> alloc:(unit -> int) -> int

(** [map mem ~alloc ~root ~vaddr ~paddr ~writable] installs one 4 KB
    mapping. Both addresses must be page-aligned; remapping an existing
    page raises [Invalid_argument]. *)
val map : Physmem.t -> alloc:(unit -> int) -> root:int -> vaddr:int -> paddr:int -> writable:bool -> unit

(** [map_range] maps [len] bytes (page-aligned) contiguously. Returns the
    number of PTEs written. *)
val map_range :
  Physmem.t -> alloc:(unit -> int) -> root:int -> vaddr:int -> paddr:int -> len:int -> writable:bool -> int

(** [walk mem ~root ~vaddr ~access] — the hardware walker: two DRAM
    reads; [None] on invalid entries or write-to-read-only. *)
val walk : Physmem.t -> root:int -> vaddr:int -> access:access -> int option

(** Cost of one walk in DRAM references (for the design ablation). *)
val walk_dram_refs : int

(** Table pages consumed by a mapping of [len] bytes starting at [vaddr]
    (root included). *)
val table_pages_for : vaddr:int -> len:int -> int
