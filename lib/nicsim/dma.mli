(** Multi-bank DMA controller mediating NIC/host transfers.

    S-NIC gives each programmable core a DMA bank with TLB entries for the
    upstream (host→NIC) and downstream (NIC→host) directions, so a
    function can only DMA into its own on-NIC RAM and into the
    host-sanctioned region of host RAM (§4.2, SR-IOV-style). On commodity
    NICs the checks are absent: any DMA can touch any address. *)

type t

(** [create ~nic_mem ~host_mem ~banks]. *)
val create : nic_mem:Physmem.t -> host_mem:Physmem.t -> banks:int -> t

(** Number of DMA banks (one per programmable core). *)
val banks : t -> int

(** The host-side physical memory this controller transfers against. *)
val host_mem : t -> Physmem.t

(** [set_sink t sink ~track_base] traces each transfer as a span on track
    [track_base + bank], with fault/violation instants and
    start/complete/fault counters.  Timestamps are recorder sequence
    numbers (the engine has no cycle clock). *)
val set_sink : t -> Obs.sink -> track_base:int -> unit

(** Per-bank TLBs. [up] translates NIC-side windows, [down] host-side
    windows. Configured by nf_launch, then locked. *)
val up_tlb : t -> bank:int -> Tlb.t

val down_tlb : t -> bank:int -> Tlb.t

(** [reset_bank t ~bank] replaces both of a bank's TLBs with fresh,
    unlocked ones (teardown path). *)
val reset_bank : t -> bank:int -> unit

(** Arm a gray-failure plan: transfers may then fail outright
    ([Faults.Dma_error]), stall the engine ([Faults.Dma_stall], see
    {!stall_cycles}), or flip one payload bit in flight
    ([Faults.Dma_corrupt]). Unarmed engines behave exactly as before. *)
val set_faults : t -> Faults.t -> unit

(** Cycles lost to injected engine stalls so far. *)
val stall_cycles : t -> int

type direction = To_host | To_nic

(** [Violation] is the architectural check rejecting the transfer (the
    fail-closed path); [Fault] is an injected gray failure of the engine
    itself. *)
type error = Violation of string | Fault of Faults.fault_event

val error_to_string : error -> string

(** [transfer ~checked t ~bank ~direction ~nic_addr ~host_addr ~len].
    When [checked] is true (S-NIC), both addresses must fall inside the
    bank's locked windows; otherwise (commodity) raw addresses are used
    unchecked. Virtual window addresses are translated. *)
val transfer :
  checked:bool -> t -> bank:int -> direction:direction -> nic_addr:int -> host_addr:int -> len:int ->
  (unit, error) result
