(** Hardware accelerator engines (DPI, ZIP, RAID, crypto).

    An accelerator aggregates hardware threads; S-NIC statically groups
    threads into clusters and fronts each cluster with a TLB bank so a
    cluster can be bound to one NF (§4.3, Figure 3). On a commodity NIC
    the threads are shared by all cores and read rules/data from arbitrary
    physical RAM — the DPI-ruleset-stealing attack exploits exactly that.

    Timing uses a simple service model: one request on one thread costs
    [overhead + bytes * per_byte] cycles; the frontend scheduler assigns
    each request to the earliest-free thread of the chosen cluster. *)

type kind = Dpi | Zip | Raid | Crypto

(** Human-readable engine name ("DPI", "ZIP", ...). *)
val kind_name : kind -> string

(** Per-kind service constants (cycles, cycles/byte). *)
val overhead_cycles : kind -> int

val cycles_per_byte : kind -> float

type t

(** [create ~kind ~threads ~cluster_size] groups [threads] into
    [threads / cluster_size] clusters. [cluster_size] must divide
    [threads]. *)
val create : kind:kind -> threads:int -> cluster_size:int -> t

(** The engine's kind. *)
val kind : t -> kind

(** Total hardware threads across all clusters. *)
val threads : t -> int

(** Threads per cluster. *)
val cluster_size : t -> int

(** Number of clusters. *)
val cluster_count : t -> int

(** [set_sink t sink ~track_base] traces every request as a span on its
    thread's track ([track_base + cluster * cluster_size + thread]) from
    dispatch to computed retirement, names each thread track, and bumps
    dispatch/retire counters.  A hung request shows as a span stretching
    past {!hang_horizon}. *)
val set_sink : t -> Obs.sink -> track_base:int -> unit

(** Arm a gray-failure plan: a submitted request may hang (cost inflated
    past {!hang_horizon}, wedging its thread until the cluster is
    released) or complete with garbage output (see {!take_garbage}).
    Unarmed engines behave exactly as before. *)
val set_faults : t -> Faults.t -> unit

(** Completion-time pad marking a hung request; a done-clock this far out
    is a wedge, not a queue. *)
val hang_horizon : int

(** [take_garbage t] — true iff the most recent completion produced
    garbage output (injected [Accel_garbage]); reading clears the flag. *)
val take_garbage : t -> bool

(** Ownership (S-NIC mode): clusters are claimed and released whole. *)
val claim_cluster : t -> nf:int -> int option

(** [release_clusters t ~nf] returns every cluster owned by [nf] to the
    free pool with a fresh, unlocked TLB and zeroed thread clocks. *)
val release_clusters : t -> nf:int -> unit

(** Current owner of a cluster, if any. *)
val cluster_owner : t -> cluster:int -> int option

(** Number of unowned clusters. *)
val free_clusters : t -> int

(** Each cluster's TLB bank (configured by nf_launch, then locked). *)
val cluster_tlb : t -> cluster:int -> Tlb.t

(** [submit t ~cluster ~now ~bytes] schedules a request; returns its
    completion time. *)
val submit : t -> cluster:int -> now:int -> bytes:int -> int

(** [submit_any t ~now ~bytes] uses any thread (commodity sharing). *)
val submit_any : t -> now:int -> bytes:int -> int

(** Reset all thread clocks (between experiments). *)
val reset_timing : t -> unit

(** A streaming access that fell outside the cluster's locked TLB bank;
    [vaddr] is the first faulting virtual address. *)
type stream_error = Stream_fault of { vaddr : int; write : bool }

val stream_error_to_string : stream_error -> string

(** [stream t ~cluster ~now ~mem ~src ~src_len ~dst ~f] streams [src_len]
    bytes from virtual address [src] through the cluster's TLB bank, maps
    them with [f], and writes the result at virtual address [dst] — all on
    the bulk datapath (one translation per mapped run, one page resolution
    per 4 KB). Returns [(bytes_written, completion_time)]; service cost is
    charged on the input size via the cluster's earliest-free thread.
    Injected hang/garbage faults apply as for {!submit} — callers should
    consult {!take_garbage}. *)
val stream :
  t ->
  cluster:int ->
  now:int ->
  mem:Physmem.t ->
  src:int ->
  src_len:int ->
  dst:int ->
  f:(string -> string) ->
  (int * int, stream_error) result
