(** Set-associative cache with way-granular partitioning.

    Three isolation modes reproduce the design space of §4.2:
    - [Shared]: no isolation (commodity NICs) — occupancy leaks across
      domains, enabling prime-and-probe.
    - [Soft]: Intel-CAT-like write partitioning — a domain only *fills*
      its own ways, but hits anywhere; the paper notes this still leaks.
    - [Hard]: static partitioning — hits and fills are confined to the
      domain's ways, eliminating the cache side channel.

    Accesses are by physical address; the unit is one line. *)

type mode =
  | Shared
  | Soft
  | Hard
  | Secdcp
      (** SecDCP-style dynamic partitioning (Wang et al., DAC'16; the
          §4.2 alternative): each domain gets a hard slice, but slice
          sizes may be resized at runtime based {e only} on domain 0's
          (the NIC OS's) cache behaviour — information can flow from the
          OS to functions but never between functions. Call {!rebalance}
          periodically. *)

type t

(** [create ~sets ~ways ~line_bits ~mode ~domains]. With [Soft]/[Hard],
    ways are split evenly across domains (requires [ways >= domains]). *)
val create : sets:int -> ways:int -> line_bits:int -> mode:mode -> domains:int -> t

(** [set_sink t sink ~track] directs hit/miss/fill counters and
    cross-domain eviction events at [sink]; event timestamps are the
    cache's own access clock. *)
val set_sink : t -> Obs.sink -> track:int -> unit

type result = Hit | Miss

val access : t -> domain:int -> addr:int -> result

(** [flush t] invalidates everything. [flush_domain t d] invalidates only
    lines owned by [d] (what nf_teardown does, §4.6). *)
val flush : t -> unit

val flush_domain : t -> int -> unit

type stats = { hits : int; misses : int; evicted_by_others : int }

val stats : t -> domain:int -> stats
val size_bytes : t -> int
val mode : t -> mode

(** Ways usable by a domain for fills, as [(lo, hi)] exclusive. *)
val fill_ways : t -> domain:int -> int * int

(** Current way allocation of a domain (Hard/Secdcp). *)
val allocation : t -> domain:int -> int

(** [rebalance t] — Secdcp only: resize domain 0's slice according to its
    own miss rate since the last rebalance (taking from / returning to
    the other domains evenly), flushing any way that changes hands.
    Returns the number of ways that moved. Raises [Invalid_argument] in
    other modes. *)
val rebalance : t -> int

(** Number of valid lines currently owned by [domain] (for occupancy
    side-channel experiments). *)
val occupancy : t -> domain:int -> int
