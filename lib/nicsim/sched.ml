type policy = Fifo | Drr of { quantum : int } | Priority of { levels : int } | Wfq

let policy_name = function
  | Fifo -> "fifo"
  | Drr { quantum } -> Printf.sprintf "drr-%d" quantum
  | Priority { levels } -> Printf.sprintf "prio-%d" levels
  | Wfq -> "wfq"

type meta = { flow : int; bytes : int; level : int; weight : int }

(* A small array-backed min-heap on float keys, for the WFQ virtual
   finish times. *)
module Heap = struct
  type 'a t = { mutable a : (float * 'a) array; mutable n : int }

  let create () = { a = Array.make 16 (0., Obj.magic 0); n = 0 }

  let swap h i j =
    let t = h.a.(i) in
    h.a.(i) <- h.a.(j);
    h.a.(j) <- t

  let push h k v =
    if h.n = Array.length h.a then begin
      let b = Array.make (2 * h.n) h.a.(0) in
      Array.blit h.a 0 b 0 h.n;
      h.a <- b
    end;
    h.a.(h.n) <- (k, v);
    h.n <- h.n + 1;
    let i = ref (h.n - 1) in
    while !i > 0 && fst h.a.((!i - 1) / 2) > fst h.a.(!i) do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  let pop h =
    if h.n = 0 then None
    else begin
      let top = h.a.(0) in
      h.n <- h.n - 1;
      h.a.(0) <- h.a.(h.n);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.n && fst h.a.(l) < fst h.a.(!smallest) then smallest := l;
        if r < h.n && fst h.a.(r) < fst h.a.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          swap h !i !smallest;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end

  let iter f h =
    for i = 0 to h.n - 1 do
      f (snd h.a.(i))
    done
end

type 'a drr_state = {
  queues : (int, (meta * 'a) Queue.t) Hashtbl.t;
  mutable rotation : int list; (* flows in round-robin order, current first *)
  deficits : (int, int) Hashtbl.t;
  quantum : int;
}

type 'a state =
  | Sfifo of (meta * 'a) Queue.t
  | Sdrr of 'a drr_state
  | Sprio of (meta * 'a) Queue.t array
  | Swfq of { heap : 'a Heap.t; finishes : (int, float) Hashtbl.t; mutable vnow : float }

type 'a t = {
  policy : policy;
  mutable count : int;
  state : 'a state;
  mutable sink : Obs.sink;
  mutable track : int;
}

let set_sink t sink ~track =
  t.sink <- sink;
  t.track <- track

let create policy =
  let state =
    match policy with
    | Fifo -> Sfifo (Queue.create ())
    | Drr { quantum } ->
      if quantum <= 0 then invalid_arg "Sched.create: quantum must be positive";
      Sdrr { queues = Hashtbl.create 16; rotation = []; deficits = Hashtbl.create 16; quantum }
    | Priority { levels } ->
      if levels <= 0 then invalid_arg "Sched.create: need at least one priority level";
      Sprio (Array.init levels (fun _ -> Queue.create ()))
    | Wfq -> Swfq { heap = Heap.create (); finishes = Hashtbl.create 16; vnow = 0. }
  in
  { policy; count = 0; state; sink = Obs.null; track = 0 }

let policy t = t.policy
let length t = t.count
let is_empty t = t.count = 0

let enqueue t meta x =
  t.count <- t.count + 1;
  match t.state with
  | Sfifo q -> Queue.push (meta, x) q
  | Sdrr s -> begin
    match Hashtbl.find_opt s.queues meta.flow with
    | Some q -> Queue.push (meta, x) q
    | None ->
      let q = Queue.create () in
      Queue.push (meta, x) q;
      Hashtbl.add s.queues meta.flow q;
      Hashtbl.replace s.deficits meta.flow 0;
      s.rotation <- s.rotation @ [ meta.flow ]
  end
  | Sprio qs ->
    let level = max 0 (min (Array.length qs - 1) meta.level) in
    Queue.push (meta, x) qs.(level)
  | Swfq s ->
    let weight = max 1 meta.weight in
    let last = Option.value ~default:0. (Hashtbl.find_opt s.finishes meta.flow) in
    let start = Float.max s.vnow last in
    let finish = start +. (float_of_int meta.bytes /. float_of_int weight) in
    Hashtbl.replace s.finishes meta.flow finish;
    Heap.push s.heap finish x

let dequeue t =
  if t.count = 0 then None
  else begin
    t.count <- t.count - 1;
    match t.state with
    | Sfifo q -> Some (snd (Queue.pop q))
    | Sprio qs ->
      let rec go i = if Queue.is_empty qs.(i) then go (i + 1) else snd (Queue.pop qs.(i)) in
      Some (go 0)
    | Swfq s -> begin
      match Heap.pop s.heap with
      | Some (finish, x) ->
        s.vnow <- finish;
        Some x
      | None -> None
    end
    | Sdrr s ->
      (* Visit flows round-robin; a flow whose head exceeds its deficit
         gets a quantum and goes to the back of the rotation. *)
      let rec go () =
        match s.rotation with
        | [] -> None
        | flow :: rest -> begin
          match Hashtbl.find_opt s.queues flow with
          | None ->
            s.rotation <- rest;
            go ()
          | Some q when Queue.is_empty q ->
            Hashtbl.remove s.queues flow;
            Hashtbl.remove s.deficits flow;
            s.rotation <- rest;
            go ()
          | Some q ->
            let meta, _ = Queue.peek q in
            let deficit = Option.value ~default:0 (Hashtbl.find_opt s.deficits flow) in
            if deficit >= meta.bytes then begin
              Hashtbl.replace s.deficits flow (deficit - meta.bytes);
              let _, x = Queue.pop q in
              if Queue.is_empty q then begin
                Hashtbl.remove s.queues flow;
                Hashtbl.remove s.deficits flow;
                s.rotation <- rest
              end;
              Some x
            end
            else begin
              (* Quantum switch: the flow's deficit refills and service
                 rotates to the next flow. *)
              Hashtbl.replace s.deficits flow (deficit + s.quantum);
              s.rotation <- rest @ [ flow ];
              Obs.count t.sink Obs.Sched_switch;
              Obs.instant t.sink ~ts:(Obs.seq t.sink) ~track:t.track Obs.Sched "drr_quantum"
                ~arg:flow;
              go ()
            end
        end
      in
      go ()
  end

let drain t =
  let rec go acc = match dequeue t with None -> List.rev acc | Some x -> go (x :: acc) in
  go []

let iter f t =
  match t.state with
  | Sfifo q -> Queue.iter (fun (_, x) -> f x) q
  | Sprio qs -> Array.iter (Queue.iter (fun (_, x) -> f x)) qs
  | Sdrr s ->
    (* Walk the rotation list, not [Hashtbl.iter]: every live flow is in
       the rotation exactly once (enqueue appends on queue creation,
       dequeue removes queue and rotation entry together), so this visits
       the same elements — but in the deterministic round-robin order.
       [Pktio.release] frees queued buffers through this iterator, and a
       hash-order walk would make the free order (and thus the allocator
       state and the trace) vary across OCaml versions. *)
    List.iter
      (fun flow ->
        match Hashtbl.find_opt s.queues flow with
        | None -> ()
        | Some q -> Queue.iter (fun (_, x) -> f x) q)
      s.rotation
  | Swfq s -> Heap.iter f s.heap

(* ---- two-stage hierarchical transmit scheduler ---------------------- *)

module Hier = struct
  (* Aliases to the single-stage scheduler above, captured before this
     module shadows the names with its own. *)
  let s_create = create
  let s_enqueue = enqueue
  let s_dequeue = dequeue
  let s_is_empty = is_empty
  let s_length = length
  let s_iter = iter

  type 'a klass = {
    mutable k_weight : int;
    k_inner : (int * 'a) t; (* stage-2 scheduler; items tagged with bytes *)
    mutable k_deficit : int;
    mutable k_active : bool; (* present in the rotation queue *)
  }

  type nonrec 'a t = {
    quantum : int;
    inner_policy : policy;
    classes : (int, 'a klass) Hashtbl.t;
    rotation : int Queue.t;
    mutable count : int;
    mutable rounds : int;
    mutable sink : Obs.sink;
    mutable track : int;
  }

  let create ?(inner = Drr { quantum = 1024 }) ~quantum () =
    if quantum <= 0 then invalid_arg "Sched.Hier.create: quantum must be positive";
    (* Validate the inner policy now, not at the first enqueue. *)
    ignore (s_create inner);
    {
      quantum;
      inner_policy = inner;
      classes = Hashtbl.create 64;
      rotation = Queue.create ();
      count = 0;
      rounds = 0;
      sink = Obs.null;
      track = 0;
    }

  let inner_policy t = t.inner_policy
  let quantum t = t.quantum

  let set_sink t sink ~track =
    t.sink <- sink;
    t.track <- track

  let klass t cls =
    match Hashtbl.find_opt t.classes cls with
    | Some k -> k
    | None ->
      let k = { k_weight = 1; k_inner = s_create t.inner_policy; k_deficit = 0; k_active = false } in
      Hashtbl.add t.classes cls k;
      k

  let set_class t ~cls ~weight =
    if weight < 1 then invalid_arg "Sched.Hier.set_class: weight must be >= 1";
    (klass t cls).k_weight <- weight

  let weight_of t ~cls =
    match Hashtbl.find_opt t.classes cls with Some k -> Some k.k_weight | None -> None

  let enqueue t ~cls meta x =
    let k = klass t cls in
    s_enqueue k.k_inner meta (meta.bytes, x);
    t.count <- t.count + 1;
    if not k.k_active then begin
      k.k_active <- true;
      k.k_deficit <- 0;
      Queue.push cls t.rotation
    end

  let rec service t =
    if Queue.is_empty t.rotation then None
    else begin
      let cls = Queue.peek t.rotation in
      match Hashtbl.find_opt t.classes cls with
      | None ->
        ignore (Queue.pop t.rotation);
        service t
      | Some k ->
        if s_is_empty k.k_inner then begin
          ignore (Queue.pop t.rotation);
          k.k_active <- false;
          (* An idle class forfeits leftover credit: banking deficit across
             idle periods would let a bursty VF later starve the rest. *)
          k.k_deficit <- 0;
          service t
        end
        else if k.k_deficit > 0 then begin
          match s_dequeue k.k_inner with
          | None -> assert false
          | Some (bytes, x) ->
            k.k_deficit <- k.k_deficit - bytes;
            t.count <- t.count - 1;
            if s_is_empty k.k_inner then begin
              ignore (Queue.pop t.rotation);
              k.k_active <- false;
              k.k_deficit <- 0
            end
            else if k.k_deficit <= 0 then begin
              ignore (Queue.pop t.rotation);
              Queue.push cls t.rotation
            end;
            Some (cls, x)
        end
        else begin
          (* One refill per visit, then rotate if still in debt. *)
          k.k_deficit <- k.k_deficit + (t.quantum * k.k_weight);
          t.rounds <- t.rounds + 1;
          Obs.count t.sink Obs.Sched_switch;
          Obs.instant t.sink ~ts:(Obs.seq t.sink) ~track:t.track Obs.Sched "wrr_quantum" ~arg:cls;
          if k.k_deficit <= 0 then begin
            ignore (Queue.pop t.rotation);
            Queue.push cls t.rotation
          end;
          service t
        end
    end

  let dequeue t = if t.count = 0 then None else service t
  let length t = t.count
  let is_empty t = t.count = 0

  let class_length t ~cls =
    match Hashtbl.find_opt t.classes cls with Some k -> s_length k.k_inner | None -> 0

  let rounds t = t.rounds

  let drain t =
    let rec go acc = match dequeue t with None -> List.rev acc | Some cx -> go (cx :: acc) in
    go []

  let iter f t =
    (* Stage-1 rotation order, then the inner scheduler's own walk —
       deterministic for the same reason the single-stage DRR walk is. *)
    Queue.iter
      (fun cls ->
        match Hashtbl.find_opt t.classes cls with
        | None -> ()
        | Some k -> s_iter (fun (_, x) -> f cls x) k.k_inner)
      t.rotation

  let remove_class t ~cls =
    match Hashtbl.find_opt t.classes cls with
    | None -> []
    | Some k ->
      let dropped = ref [] in
      s_iter (fun (_, x) -> dropped := x :: !dropped) k.k_inner;
      t.count <- t.count - s_length k.k_inner;
      Hashtbl.remove t.classes cls;
      (* Purge the rotation queue without disturbing relative order. *)
      let keep = Queue.create () in
      Queue.iter (fun c -> if c <> cls then Queue.push c keep) t.rotation;
      Queue.clear t.rotation;
      Queue.transfer keep t.rotation;
      List.rev !dropped
end
