(** Per-tenant performance isolation: a credit/budget arbiter fronting
    the three shared NIC resources — {!Bus} transactions, {!Dma}
    transfer bytes and {!Accel} stream cycles.

    S-NIC's temporal partitioning is the {e security} half of
    multi-tenant isolation; OSMOSIS observes that a SmartNIC still
    fails its tenants without the {e performance} half: one noisy
    neighbor on a shared DMA engine or accelerator cluster starves
    everyone else even when every access check passes.  This module
    adds that half as a credit scheme:

    - time is divided into fixed accounting {e epochs} (cycles);
    - each tenant holds a per-resource {e guarantee} (credits refilled
      every epoch) and a {e cap} (burst ceiling per epoch);
    - a request inside the guarantee is always granted — registration
      rejects over-subscription, so guarantees are real;
    - beyond its guarantee a tenant may {e borrow} from slack
      (capacity not promised to anyone, plus credit donated by tenants
      that left their guarantee unused last epoch) — but never from
      credit still reserved for another tenant's unreached guarantee;
    - otherwise the request gets typed {!Throttled} backpressure with
      the cycle at which credit next refills, instead of queueing
      behind (and degrading) its neighbors.

    Unused guaranteed credit is donated to the next epoch's shared
    slack pool (clamped at one epoch's capacity), so idle credit is
    redistributed, never destroyed — the work-conservation property
    [test/test_qos.ml] checks.

    The arbiter also owns per-tenant latency accounting: the fronting
    wrappers sample request latency (completion - issue), and
    {!note_latency} checks each sample against the tenant's SLO,
    counting [slo_violations] through [lib/obs].  Sustained violation
    is the health signal [Fleet.Supervisor] uses to quarantine a noisy
    tenant. *)

(** The three metered shared resources.  Credit units are transaction
    cycles for the bus, transfer bytes for DMA, and stream/service
    cycles for accelerators. *)
type resource = Bus | Dma | Accel

val resource_name : resource -> string
(** ["bus"], ["dma"] or ["accel"]. *)

(** Per-resource credit terms for one tenant, in credits per epoch.
    [cap >= guarantee >= 0]; [cap] bounds total consumption per epoch
    (the burst ceiling), [guarantee] is the refill floor. *)
type share = { guarantee : int; cap : int }

(** One tenant's contract: credit terms on each resource plus an
    optional latency SLO in cycles (a latency sample above [slo]
    counts one SLO violation). *)
type limits = {
  bus : share;
  dma : share;
  accel : share;
  slo : int option;
}

val flat : guarantee:int -> cap:int -> ?slo:int -> unit -> limits
(** Same terms on all three resources — the common case in tests and
    scenarios. *)

type config = {
  epoch : int;  (** cycles per accounting epoch; > 0 *)
  bus_capacity : int;  (** bus credits available per epoch; > 0 *)
  dma_capacity : int;  (** DMA byte credits per epoch; > 0 *)
  accel_capacity : int;  (** accel cycle credits per epoch; > 0 *)
}

type t

val create : config -> t
(** Raises [Invalid_argument] on a non-positive epoch or capacity. *)

val config : t -> config

val set_sink : t -> Obs.sink -> track_base:int -> unit
(** Route grant/throttle/borrow counters, throttle instants and the
    [qos_latency_cycles] histogram to [sink].  Tracks [track_base]..
    [track_base+2] carry per-resource throttle instants. *)

val register : t -> tenant:int -> limits -> unit
(** Add (or replace) a tenant's contract.  Raises [Invalid_argument]
    if any [cap < guarantee], a term is negative, or the sum of
    registered guarantees on any resource would exceed that resource's
    per-epoch capacity — over-subscribed guarantees are lies, and the
    always-grant invariant depends on rejecting them here. *)

val registered : t -> tenant:int -> bool
val tenants : t -> int list
(** Registered tenant ids, sorted. *)

(** Typed backpressure: who was throttled, on what, and the cycle at
    which credit next refills (the following epoch boundary). *)
type throttle = { tenant : int; resource : resource; until : int }

type verdict = Granted | Throttled of throttle

val admit : t -> tenant:int -> resource:resource -> cost:int -> now:int -> verdict
(** Charge [cost] credits against [tenant]'s budget at cycle [now].
    Epoch state rolls forward from [now]; [now] must not go backwards
    across calls.  Raises [Invalid_argument] for an unregistered
    tenant or a non-positive cost. *)

val current_epoch : t -> int
(** Index of the epoch the arbiter last rolled to. *)

val epoch_granted : t -> resource:resource -> int
(** Credits granted on [resource] so far in the current epoch (the
    conservation property bounds this by capacity + donated slack). *)

val epoch_slack : t -> resource:resource -> int
(** Donated credit carried into the current epoch on [resource]. *)

(* ------------------------------------------------------------------ *)
(** {2 Fronting wrappers}

    Admission then forwarding: each wrapper charges the resource's
    natural cost unit, and on grant forwards to the underlying device
    and samples request latency where the device has a completion
    clock.  [Error throttle] means the device was never touched. *)

val bus_request :
  t -> bus:Bus.t -> tenant:int -> client:int -> now:int -> cost:int -> (int, throttle) result
(** Charge [cost] bus credits; on grant, [Bus.request] and a latency
    sample of [completion - now]. *)

val dma_transfer :
  t ->
  dma:Dma.t ->
  tenant:int ->
  now:int ->
  checked:bool ->
  bank:int ->
  direction:Dma.direction ->
  nic_addr:int ->
  host_addr:int ->
  len:int ->
  ((unit, Dma.error) result, throttle) result
(** Charge [len] byte credits; on grant, [Dma.transfer].  DMA has no
    completion clock, so no latency sample is taken here. *)

val accel_submit :
  t -> accel:Accel.t -> tenant:int -> cluster:int -> now:int -> bytes:int -> (int, throttle) result
(** Charge the modeled service cost (kind overhead + per-byte cycles)
    in accel credits; on grant, [Accel.submit] and a latency sample. *)

val accel_stream :
  t ->
  accel:Accel.t ->
  tenant:int ->
  cluster:int ->
  now:int ->
  mem:Physmem.t ->
  src:int ->
  src_len:int ->
  dst:int ->
  f:(string -> string) ->
  ((int * int, Accel.stream_error) result, throttle) result
(** Charge the stream's service cost on [src_len]; on grant,
    [Accel.stream] and a latency sample on success. *)

val accel_cost : Accel.t -> bytes:int -> int
(** The accel credit cost the wrappers charge for [bytes]. *)

(* ------------------------------------------------------------------ *)
(** {2 Latency and SLO accounting} *)

val note_latency : t -> tenant:int -> cycles:int -> unit
(** Record one request-latency sample; bumps the tenant's
    [slo_violations] when [cycles] exceeds its SLO. *)

val latency_quantile : t -> tenant:int -> q:float -> float option
(** Exact [q]-quantile of the tenant's latency samples
    ([Obs.Metrics.quantile_of_samples] convention: [None] below two
    samples). *)

(** Cumulative per-tenant accounting since creation. *)
type tenant_stats = {
  grants : int;  (** requests granted *)
  throttles : int;  (** requests refused with {!Throttled} *)
  borrows : int;  (** grants that dipped into shared slack *)
  borrowed_credits : int;  (** credits granted beyond the guarantee *)
  granted_bus : int;  (** bus credits granted, all epochs *)
  granted_dma : int;
  granted_accel : int;
  samples : int;  (** latency samples recorded *)
  slo_violations : int;
}

val stats : t -> tenant:int -> tenant_stats
(** Raises [Invalid_argument] for an unregistered tenant. *)

val granted_credits : t -> tenant:int -> resource:resource -> int
