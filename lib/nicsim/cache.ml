type mode = Shared | Soft | Hard | Secdcp
type result = Hit | Miss
type stats = { hits : int; misses : int; evicted_by_others : int }

type line = { mutable tag : int; mutable valid : bool; mutable owner : int; mutable lru : int }

type t = {
  sets : int;
  set_bits : int;
  ways : int;
  line_bits : int;
  mode : mode;
  domains : int;
  lines : line array; (* sets * ways, row-major *)
  mutable clock : int;
  per_domain : stats array;
  alloc : int array; (* ways per domain (Hard/Secdcp); prefix-summed into ranges *)
  mutable os_hits_mark : int; (* domain-0 stats at the last rebalance *)
  mutable os_misses_mark : int;
  mutable sink : Obs.sink;
  mutable track : int;
}

let create ~sets ~ways ~line_bits ~mode ~domains =
  if sets <= 0 || sets land (sets - 1) <> 0 then invalid_arg "Cache.create: sets must be a power of two";
  if ways <= 0 then invalid_arg "Cache.create: ways must be positive";
  if domains <= 0 then invalid_arg "Cache.create: domains must be positive";
  if mode <> Shared && ways < domains then invalid_arg "Cache.create: need at least one way per domain";
  if mode = Secdcp && domains < 2 then invalid_arg "Cache.create: Secdcp needs the OS plus at least one function";
  let set_bits = (let rec lg n = if n <= 1 then 0 else 1 + lg (n / 2) in lg sets) in
  (* Even initial split with leftovers to low domains. *)
  let alloc =
    Array.init domains (fun d -> (ways / domains) + if d < ways mod domains then 1 else 0)
  in
  {
    sets;
    set_bits;
    ways;
    line_bits;
    mode;
    domains;
    lines = Array.init (sets * ways) (fun _ -> { tag = 0; valid = false; owner = -1; lru = 0 });
    clock = 0;
    per_domain = Array.make domains { hits = 0; misses = 0; evicted_by_others = 0 };
    alloc;
    os_hits_mark = 0;
    os_misses_mark = 0;
    sink = Obs.null;
    track = 0;
  }

let set_sink t sink ~track =
  t.sink <- sink;
  t.track <- track

let fill_ways t ~domain =
  match t.mode with
  | Shared -> (0, t.ways)
  | Soft | Hard | Secdcp ->
    let lo = ref 0 in
    for d = 0 to domain - 1 do
      lo := !lo + t.alloc.(d)
    done;
    (!lo, !lo + t.alloc.(domain))

let allocation t ~domain = match t.mode with Shared -> t.ways | Soft | Hard | Secdcp -> t.alloc.(domain)

let bump t domain f =
  let s = t.per_domain.(domain) in
  t.per_domain.(domain) <- f s

let access t ~domain ~addr =
  if domain < 0 || domain >= t.domains then invalid_arg "Cache.access: bad domain";
  t.clock <- t.clock + 1;
  let line_addr = addr lsr t.line_bits in
  let set = line_addr land (t.sets - 1) in
  let tag = line_addr lsr t.set_bits in
  let row = set * t.ways in
  let hit_lo, hit_hi = match t.mode with Hard | Secdcp -> fill_ways t ~domain | Shared | Soft -> (0, t.ways) in
  let found = ref None in
  for w = hit_lo to hit_hi - 1 do
    let l = t.lines.(row + w) in
    if !found = None && l.valid && l.tag = tag then found := Some l
  done;
  match !found with
  | Some l ->
    l.lru <- t.clock;
    bump t domain (fun s -> { s with hits = s.hits + 1 });
    Obs.count t.sink Obs.Cache_hit;
    Hit
  | None ->
    bump t domain (fun s -> { s with misses = s.misses + 1 });
    Obs.count t.sink Obs.Cache_miss;
    Obs.count t.sink Obs.Cache_fill;
    (* Fill: evict LRU among the domain's fill ways. *)
    let lo, hi = fill_ways t ~domain in
    let victim = ref t.lines.(row + lo) in
    for w = lo to hi - 1 do
      let l = t.lines.(row + w) in
      if (not l.valid) && !victim.valid then victim := l
      else if l.valid && !victim.valid && l.lru < !victim.lru then victim := l
    done;
    let v = !victim in
    if v.valid && v.owner >= 0 && v.owner <> domain then begin
      bump t v.owner (fun s -> { s with evicted_by_others = s.evicted_by_others + 1 });
      (* Cross-domain evictions are the cache side channel — worth a
         point event each, not just a count. *)
      Obs.count t.sink Obs.Cache_evict;
      Obs.instant t.sink ~ts:t.clock ~track:t.track Obs.Cache "cache_evict" ~arg:v.owner
    end;
    v.tag <- tag;
    v.valid <- true;
    v.owner <- domain;
    v.lru <- t.clock;
    Miss

let flush t = Array.iter (fun l -> l.valid <- false) t.lines

let flush_domain t d =
  Array.iter
    (fun l ->
      if l.valid && l.owner = d then begin
        l.valid <- false;
        l.owner <- -1
      end)
    t.lines

let stats t ~domain = t.per_domain.(domain)
let size_bytes t = t.sets * t.ways * (1 lsl t.line_bits)
let mode t = t.mode

let occupancy t ~domain =
  Array.fold_left (fun acc l -> if l.valid && l.owner = domain then acc + 1 else acc) 0 t.lines

let flush_way t w =
  for set = 0 to t.sets - 1 do
    let l = t.lines.((set * t.ways) + w) in
    l.valid <- false;
    l.owner <- -1
  done

(* Move one way at boundary [from_domain -> to_domain] by adjusting the
   allocation vector; flush every way past the smallest affected range
   boundary, because way indices shift meaning. Conservative but simple,
   and certainly leak-free. *)
let rebalance t =
  if t.mode <> Secdcp then invalid_arg "Cache.rebalance: only meaningful in Secdcp mode";
  let os = t.per_domain.(0) in
  let hits = os.hits - t.os_hits_mark and misses = os.misses - t.os_misses_mark in
  t.os_hits_mark <- os.hits;
  t.os_misses_mark <- os.misses;
  let total = hits + misses in
  if total = 0 then 0
  else begin
    let miss_rate = float_of_int misses /. float_of_int total in
    let moved = ref 0 in
    let donor () =
      (* Deterministic choice: the non-OS domain holding the most ways.
         Crucially this does not consult any function's cache behaviour. *)
      let best = ref 1 in
      for d = 2 to t.domains - 1 do
        if t.alloc.(d) > t.alloc.(!best) then best := d
      done;
      !best
    in
    let needy () =
      let best = ref 1 in
      for d = 2 to t.domains - 1 do
        if t.alloc.(d) < t.alloc.(!best) then best := d
      done;
      !best
    in
    if miss_rate > 0.5 then begin
      let d = donor () in
      if t.alloc.(d) > 1 then begin
        t.alloc.(d) <- t.alloc.(d) - 1;
        t.alloc.(0) <- t.alloc.(0) + 1;
        moved := 1
      end
    end
    else if miss_rate < 0.1 && t.alloc.(0) > 1 then begin
      let d = needy () in
      t.alloc.(0) <- t.alloc.(0) - 1;
      t.alloc.(d) <- t.alloc.(d) + 1;
      moved := 1
    end;
    if !moved > 0 then
      for w = 0 to t.ways - 1 do
        flush_way t w
      done;
    !moved
  end
