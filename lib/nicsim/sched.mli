(** Per-VPP packet schedulers.

    A virtual packet pipeline's configuration names "the desired packet
    scheduling algorithm" (§4.4, citing PIFO- and Loom-style programmable
    schedulers). The scheduler orders the packets queued for one NF across
    its flows. Four classic disciplines are provided; the choice is part
    of the function's measured configuration. *)

type policy =
  | Fifo
  | Drr of { quantum : int } (* deficit round robin, byte quantum *)
  | Priority of { levels : int } (* strict priority, 0 = highest *)
  | Wfq (* weighted fair queueing by flow weight *)

val policy_name : policy -> string

(** Policy of a descriptor: its flow key, its size in bytes, and
    discipline-specific class/weight. *)
type meta = {
  flow : int; (* flow key (hash); one queue per flow for DRR/WFQ *)
  bytes : int;
  level : int; (* Priority: class (0 = highest); ignored otherwise *)
  weight : int; (* Wfq: flow weight (>=1); ignored otherwise *)
}

type 'a t

val create : policy -> 'a t

(** The discipline this scheduler was created with. *)
val policy : 'a t -> policy

(** [set_sink t sink ~track] emits a [drr_quantum] instant (and bumps the
    quantum-switch counter) each time DRR refills a flow's deficit and
    rotates service to the next flow.  Other disciplines emit nothing. *)
val set_sink : 'a t -> Obs.sink -> track:int -> unit

val enqueue : 'a t -> meta -> 'a -> unit

(** [dequeue t] picks the next descriptor per the discipline. *)
val dequeue : 'a t -> 'a option

val length : 'a t -> int
val is_empty : 'a t -> bool

(** Drain everything, in service order. *)
val drain : 'a t -> 'a list

(** Apply [f] to every queued element (used to recycle buffers when a
    pipeline is torn down). *)
val iter : ('a -> unit) -> 'a t -> unit
