(** Per-VPP packet schedulers.

    A virtual packet pipeline's configuration names "the desired packet
    scheduling algorithm" (§4.4, citing PIFO- and Loom-style programmable
    schedulers). The scheduler orders the packets queued for one NF across
    its flows. Four classic disciplines are provided; the choice is part
    of the function's measured configuration. *)

type policy =
  | Fifo
  | Drr of { quantum : int } (* deficit round robin, byte quantum *)
  | Priority of { levels : int } (* strict priority, 0 = highest *)
  | Wfq (* weighted fair queueing by flow weight *)

val policy_name : policy -> string

(** Policy of a descriptor: its flow key, its size in bytes, and
    discipline-specific class/weight. *)
type meta = {
  flow : int; (* flow key (hash); one queue per flow for DRR/WFQ *)
  bytes : int;
  level : int; (* Priority: class (0 = highest); ignored otherwise *)
  weight : int; (* Wfq: flow weight (>=1); ignored otherwise *)
}

type 'a t

val create : policy -> 'a t

(** The discipline this scheduler was created with. *)
val policy : 'a t -> policy

(** [set_sink t sink ~track] emits a [drr_quantum] instant (and bumps the
    quantum-switch counter) each time DRR refills a flow's deficit and
    rotates service to the next flow.  Other disciplines emit nothing. *)
val set_sink : 'a t -> Obs.sink -> track:int -> unit

val enqueue : 'a t -> meta -> 'a -> unit

(** [dequeue t] picks the next descriptor per the discipline. *)
val dequeue : 'a t -> 'a option

val length : 'a t -> int
val is_empty : 'a t -> bool

(** Drain everything, in service order. *)
val drain : 'a t -> 'a list

(** Apply [f] to every queued element (used to recycle buffers when a
    pipeline is torn down). *)
val iter : ('a -> unit) -> 'a t -> unit

(** Two-stage hierarchical transmit scheduler (the SR-IOV VF datapath).

    Stage 1 is a weighted deficit round robin across integer class keys
    (one class per virtual function, weight = the VF's share); stage 2 is
    an ordinary single-stage scheduler per class (by default the per-flow
    DRR above), so each VF keeps its own flow ordering while the classes
    split link bytes in proportion to their weights.

    The stage-1 discipline is byte-based DRR with one refill per visit:
    a class in debt receives [quantum * weight] credit and, if still in
    debt, rotates to the back.  A class that empties forfeits leftover
    credit, so long-run byte shares of backlogged classes converge to
    their weights (within one refill plus one max-size packet) and no
    backlogged class can be starved. *)
module Hier : sig
  type 'a t

  (** [create ?inner ~quantum ()] — [quantum] is the stage-1 byte credit
      per weight unit per rotation visit; [inner] is the per-class
      stage-2 discipline (default [Drr {quantum = 1024}]). *)
  val create : ?inner:policy -> quantum:int -> unit -> 'a t

  val inner_policy : 'a t -> policy
  val quantum : 'a t -> int

  (** Emits a [wrr_quantum] instant (and bumps the quantum-switch
      counter) on every stage-1 refill. *)
  val set_sink : 'a t -> Obs.sink -> track:int -> unit

  (** [set_class t ~cls ~weight] declares (or re-weights) a class.
      Classes are created implicitly with weight 1 on first enqueue.
      Raises [Invalid_argument] if [weight < 1]. *)
  val set_class : 'a t -> cls:int -> weight:int -> unit

  val weight_of : 'a t -> cls:int -> int option

  (** [enqueue t ~cls meta x] queues [x] on class [cls]; [meta] feeds the
      stage-2 discipline and [meta.bytes] charges the stage-1 deficit. *)
  val enqueue : 'a t -> cls:int -> meta -> 'a -> unit

  (** Next (class, element) per the two-stage discipline. *)
  val dequeue : 'a t -> (int * 'a) option

  val length : 'a t -> int
  val is_empty : 'a t -> bool

  (** Queued elements on one class (other classes' backlogs never count
      against it). *)
  val class_length : 'a t -> cls:int -> int

  (** Stage-1 quantum refills so far (a determinism-friendly progress
      measure). *)
  val rounds : 'a t -> int

  val drain : 'a t -> (int * 'a) list

  (** Visit every queued element in deterministic rotation-walk order. *)
  val iter : (int -> 'a -> unit) -> 'a t -> unit

  (** [remove_class t ~cls] drops the class and returns its queued
      elements in service order (used to recycle descriptors when a VF
      detaches). *)
  val remove_class : 'a t -> cls:int -> 'a list
end
