type kind = Dpi | Zip | Raid | Crypto

let kind_name = function Dpi -> "DPI" | Zip -> "ZIP" | Raid -> "RAID" | Crypto -> "Crypto"

(* Calibrated so that a 48-thread DPI engine saturates around 1 Mpps on
   small frames (producer-bound) and scales with threads on jumbo frames,
   matching the shape of the paper's Figure 8. *)
let overhead_cycles = function Dpi -> 2_000 | Zip -> 3_000 | Raid -> 1_500 | Crypto -> 2_500

let cycles_per_byte = function Dpi -> 10.0 | Zip -> 14.0 | Raid -> 4.0 | Crypto -> 8.0

type cluster = { mutable tlb : Tlb.t; mutable owner : int option; thread_free : int array }

type t = {
  kind : kind;
  cluster_size : int;
  clusters : cluster array;
  mutable faults : Faults.t option;
  mutable garbage_pending : bool;
  mutable sink : Obs.sink;
  mutable track_base : int;
}

(* A hung request "completes" one simulated second out — far past any
   watchdog budget, so supervisors can tell a wedge from a slow engine. *)
let hang_horizon = 1_000_000_000

let create ~kind ~threads ~cluster_size =
  if threads <= 0 || cluster_size <= 0 || threads mod cluster_size <> 0 then
    invalid_arg "Accel.create: cluster size must divide thread count";
  {
    kind;
    cluster_size;
    clusters =
      Array.init (threads / cluster_size) (fun _ ->
          { tlb = Tlb.create ~capacity:128 (); owner = None; thread_free = Array.make cluster_size 0 });
    faults = None;
    garbage_pending = false;
    sink = Obs.null;
    track_base = 0;
  }

let set_faults t f = t.faults <- Some f

let set_sink t sink ~track_base =
  t.sink <- sink;
  t.track_base <- track_base;
  Array.iteri
    (fun ci c ->
      Array.iteri
        (fun ti _ ->
          Obs.name_track sink
            ~track:(track_base + (ci * Array.length c.thread_free) + ti)
            (Printf.sprintf "%s c%d t%d" (kind_name t.kind) ci ti))
        c.thread_free)
    t.clusters

let take_garbage t =
  let g = t.garbage_pending in
  t.garbage_pending <- false;
  g

let kind t = t.kind
let threads t = Array.length t.clusters * t.cluster_size
let cluster_size t = t.cluster_size
let cluster_count t = Array.length t.clusters

let claim_cluster t ~nf =
  let rec go i =
    if i >= Array.length t.clusters then None
    else if t.clusters.(i).owner = None then begin
      t.clusters.(i).owner <- Some nf;
      Some i
    end
    else go (i + 1)
  in
  go 0

let release_clusters t ~nf =
  Array.iter
    (fun c ->
      if c.owner = Some nf then begin
        c.owner <- None;
        (* A fresh, unlocked TLB bank for the next tenant. *)
        c.tlb <- Tlb.create ~capacity:128 ();
        Array.fill c.thread_free 0 (Array.length c.thread_free) 0
      end)
    t.clusters

let cluster_owner t ~cluster = t.clusters.(cluster).owner
let free_clusters t = Array.fold_left (fun acc c -> acc + if c.owner = None then 1 else 0) 0 t.clusters
let cluster_tlb t ~cluster = t.clusters.(cluster).tlb

let service_cycles t ~bytes = overhead_cycles t.kind + int_of_float (cycles_per_byte t.kind *. float_of_int bytes)

(* Consult the fault plan for one request: a hang inflates the cost past
   [hang_horizon] (the thread stays wedged until the cluster is released);
   garbage completes on time but flags the output as untrustworthy. *)
let faulted_cost t ~cost ~bytes =
  match t.faults with
  | None -> cost
  | Some f -> (
    let detail = Printf.sprintf "%s bytes=%d" (kind_name t.kind) bytes in
    match Faults.fire f ~device:"accel" Faults.Accel_hang ~detail with
    | Some _ -> cost + hang_horizon
    | None ->
      (match Faults.fire f ~device:"accel" Faults.Accel_garbage ~detail with
      | Some _ -> t.garbage_pending <- true
      | None -> ());
      cost)

(* Dispatch [cost] cycles onto thread [ti] of cluster [ci].  Retirement
   is computed at dispatch (the model is deterministic), so the span and
   both counters are emitted here; per-thread serialization through
   [thread_free] keeps each track's spans non-overlapping. *)
let dispatch t ~ci ~ti ~cost ~now =
  let c = t.clusters.(ci) in
  let start = max now c.thread_free.(ti) in
  let finish = start + cost in
  c.thread_free.(ti) <- finish;
  Obs.count t.sink Obs.Accel_dispatch;
  Obs.count t.sink Obs.Accel_retire;
  let track = t.track_base + (ci * t.cluster_size) + ti in
  Obs.span_begin t.sink ~ts:start ~track Obs.Accel "accel_op" ~arg:cost;
  Obs.span_end t.sink ~ts:finish ~track Obs.Accel "accel_op" ~arg:cost;
  finish

let submit_cluster t ci ~cost ~now =
  (* Earliest-free thread of the cluster. *)
  let c = t.clusters.(ci) in
  let best = ref 0 in
  Array.iteri (fun i free -> if free < c.thread_free.(!best) then best := i) c.thread_free;
  dispatch t ~ci ~ti:!best ~cost ~now

let submit t ~cluster ~now ~bytes =
  if cluster < 0 || cluster >= Array.length t.clusters then invalid_arg "Accel.submit: bad cluster";
  submit_cluster t cluster ~cost:(faulted_cost t ~cost:(service_cycles t ~bytes) ~bytes) ~now

let submit_any t ~now ~bytes =
  (* Commodity sharing: frontend scheduler picks the globally
     earliest-free thread. *)
  let cost = faulted_cost t ~cost:(service_cycles t ~bytes) ~bytes in
  let best_c = ref 0 and best_t = ref 0 in
  Array.iteri
    (fun ci c ->
      Array.iteri
        (fun ti free -> if free < t.clusters.(!best_c).thread_free.(!best_t) then begin best_c := ci; best_t := ti end)
        c.thread_free)
    t.clusters;
  dispatch t ~ci:!best_c ~ti:!best_t ~cost ~now

let reset_timing t = Array.iter (fun c -> Array.fill c.thread_free 0 (Array.length c.thread_free) 0) t.clusters

type stream_error = Stream_fault of { vaddr : int; write : bool }

let stream_error_to_string = function
  | Stream_fault { vaddr; write } ->
    Printf.sprintf "accelerator TLB fault on %s at vaddr %#x" (if write then "write" else "read") vaddr

(* Streaming I/O through the cluster's TLB bank: one [translate_run] per
   mapped run and one page resolution per 4 KB chunk (the bulk datapath),
   instead of a translation plus a hash lookup per byte. The engine's
   confinement is exactly the TLB bank nf_launch configured and locked:
   any byte outside it faults at its precise virtual address. *)
let stream t ~cluster ~now ~mem ~src ~src_len ~dst ~f =
  if cluster < 0 || cluster >= Array.length t.clusters then invalid_arg "Accel.stream: bad cluster";
  if src_len < 0 then invalid_arg "Accel.stream: bad length";
  let tlb = t.clusters.(cluster).tlb in
  (* Move [len] bytes between vaddr space and [buf] chunk by chunk;
     [copy paddr ~off ~n] does the actual blit for one mapped run. *)
  let move ~vaddr ~len ~access ~copy =
    let rec go off =
      if off >= len then Ok ()
      else begin
        match Tlb.translate_run tlb ~vaddr:(vaddr + off) ~len:(len - off) ~access with
        | None -> Error (Stream_fault { vaddr = vaddr + off; write = access = Tlb.Write })
        | Some (paddr, n) ->
          copy paddr ~off ~n;
          go (off + n)
      end
    in
    go 0
  in
  let inbuf = Bytes.create src_len in
  match
    move ~vaddr:src ~len:src_len ~access:Tlb.Read ~copy:(fun paddr ~off ~n ->
        Physmem.blit_to_bytes mem ~pos:paddr inbuf ~off ~len:n)
  with
  | Error e -> Error e
  | Ok () -> begin
    let out = f (Bytes.unsafe_to_string inbuf) in
    let outbuf = Bytes.unsafe_of_string out in
    let out_len = Bytes.length outbuf in
    match
      move ~vaddr:dst ~len:out_len ~access:Tlb.Write ~copy:(fun paddr ~off ~n ->
          Physmem.blit_from_bytes mem ~pos:paddr outbuf ~off ~len:n)
    with
    | Error e -> Error e
    | Ok () ->
      (* Service cost scales with the streamed input; hang/garbage faults
         apply exactly as for [submit]. *)
      let done_at = submit_cluster t cluster ~cost:(faulted_cost t ~cost:(service_cycles t ~bytes:src_len) ~bytes:src_len) ~now in
      Ok (out_len, done_at)
  end
