(** Sparse simulated physical memory with per-page ownership.

    On-NIC DRAM is gigabytes, so pages are materialized lazily. Ownership
    is the ground truth that S-NIC's trusted hardware enforces: every 4 KB
    frame belongs to nobody, to the NIC OS, or to exactly one network
    function (single-owner RAM semantics, §4.2). The *enforcement* of
    ownership depends on the machine mode and lives in {!Machine}; this
    module just stores bytes and owners. *)

type t

type owner = Free | Nic_os | Nf of int

val page_bits : int
(** 12: 4 KB ownership/backing granularity. *)

val page_size : int

(** [create ~size] models [size] bytes of DRAM. Accesses beyond [size]
    raise [Invalid_argument]. *)
val create : size:int -> t

val size : t -> int

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit

(** [flip_bit t ~pos ~bit] flips bit [bit] (0..7) of the byte at [pos],
    ignoring ownership — the DRAM-rot primitive for fault injection. *)
val flip_bit : t -> pos:int -> bit:int -> unit

(** Little-endian 64-bit accessors (used by allocator metadata and
    descriptor rings). Values are OCaml ints (62 significant bits). *)
val read_u64 : t -> int -> int

val write_u64 : t -> int -> int -> unit

val read_bytes : t -> pos:int -> len:int -> string
val write_bytes : t -> pos:int -> string -> unit

(** [zero_range t ~pos ~len] scrubs memory (the work nf_teardown does). *)
val zero_range : t -> pos:int -> len:int -> unit

(** [is_zero t ~pos ~len] checks a scrub (test support). *)
val is_zero : t -> pos:int -> len:int -> bool

val owner_of : t -> int -> owner

(** [set_owner t ~pos ~len owner] claims whole pages covering the range.
    Raises [Invalid_argument] if the range is not page-aligned. *)
val set_owner : t -> pos:int -> len:int -> owner -> unit

(** All pages owned by [owner], as (pos, len) runs. *)
val owned_ranges : t -> owner -> (int * int) list

val pp_owner : Format.formatter -> owner -> unit
val owner_equal : owner -> owner -> bool
