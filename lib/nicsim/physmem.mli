(** Sparse simulated physical memory with per-page ownership.

    On-NIC DRAM is gigabytes, so pages are materialized lazily. Ownership
    is the ground truth that S-NIC's trusted hardware enforces: every 4 KB
    frame belongs to nobody, to the NIC OS, or to exactly one network
    function (single-owner RAM semantics, §4.2). The *enforcement* of
    ownership depends on the machine mode and lives in {!Machine}; this
    module just stores bytes and owners.

    {2 The bulk datapath}

    Multi-byte accesses resolve each 4 KB page once and [Bytes.blit]
    within it, so an N-byte transfer costs O(N/4096) page-table lookups
    instead of O(N). The sparse-page invariant is preserved: a page
    absent from the table reads as zeroes, bulk reads never materialize
    it, and [zero_range] over a whole page drops it back out of the
    table. DMA, packet IO and accelerator streaming all ride this path. *)

type t

type owner = Free | Nic_os | Nf of int

val page_bits : int
(** 12: 4 KB ownership/backing granularity. *)

val page_size : int

(** [create ~size] models [size] bytes of DRAM. Accesses beyond [size]
    raise [Invalid_argument]; the bounds check is overflow-safe, so a
    hostile length near [max_int] cannot wrap past it. *)
val create : size:int -> t

val size : t -> int

(** Page-table lookups served so far — one per byte on the legacy
    [read_u8]/[write_u8] path, one per 4 KB page on the bulk path. The
    datapath bench gates regressions on this counter. *)
val resolutions : t -> int

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit

(** [flip_bit t ~pos ~bit] flips bit [bit] (0..7) of the byte at [pos],
    ignoring ownership — the DRAM-rot primitive for fault injection. *)
val flip_bit : t -> pos:int -> bit:int -> unit

(** Little-endian 64-bit accessors (used by allocator metadata and
    descriptor rings). Values are OCaml ints (62 significant bits). *)
val read_u64 : t -> int -> int

val write_u64 : t -> int -> int -> unit

(** [blit_to_bytes t ~pos buf ~off ~len] copies [len] DRAM bytes starting
    at [pos] into [buf] at [off], one page resolution per 4 KB.
    Never-written pages read as zeroes without being materialized. *)
val blit_to_bytes : t -> pos:int -> Bytes.t -> off:int -> len:int -> unit

(** [blit_from_bytes t ~pos buf ~off ~len] copies [len] bytes from [buf]
    at [off] into DRAM at [pos], one page resolution per 4 KB. *)
val blit_from_bytes : t -> pos:int -> Bytes.t -> off:int -> len:int -> unit

(** [fill t ~pos ~len c] writes [len] copies of [c]. Filling with
    ['\000'] is [zero_range] (drops whole pages back to sparse). *)
val fill : t -> pos:int -> len:int -> char -> unit

val read_bytes : t -> pos:int -> len:int -> string
val write_bytes : t -> pos:int -> string -> unit

(** [zero_range t ~pos ~len] scrubs memory (the work nf_teardown does).
    Fully covered pages are dropped from the table, restoring the sparse
    zero page; partial edge pages are cleared in place. *)
val zero_range : t -> pos:int -> len:int -> unit

(** [is_zero t ~pos ~len] checks a scrub page-at-a-time (verified-scrub
    support: absent pages are zero by the sparse invariant). *)
val is_zero : t -> pos:int -> len:int -> bool

val owner_of : t -> int -> owner

(** [set_owner t ~pos ~len owner] claims whole pages covering the range.
    Raises [Invalid_argument] if the range is not page-aligned. *)
val set_owner : t -> pos:int -> len:int -> owner -> unit

(** All page indices owned by [owner], in ascending order (sorted so
    scrub/teardown walks are deterministic across OCaml versions). *)
val pages_owned : t -> owner -> int list

(** All pages owned by [owner], as ascending (pos, len) runs. *)
val owned_ranges : t -> owner -> (int * int) list

val pp_owner : Format.formatter -> owner -> unit
val owner_equal : owner -> owner -> bool
