(** Packet ingress/egress: switch rules, RX/TX buffer accounting and
    per-NF descriptor rings (the packet input/output modules of Figure 1,
    and the raw material of S-NIC's virtual packet pipelines, §4.4).

    The packet input module matches each arriving frame against the
    switching rules (5-tuple predicates, optionally a VXLAN VNI), copies
    it into a buffer drawn from the destination NF's buffer pool in DRAM,
    and pushes a descriptor. The output module drains TX descriptors onto
    the wire. *)

type rule_match = {
  src_prefix : (Net.Ipv4_addr.t * int) option;
  dst_prefix : (Net.Ipv4_addr.t * int) option;
  proto : int option;
  src_port : int option;
  dst_port : int option;
  vni : int option; (* matches VXLAN-encapsulated traffic's VNI *)
}

val match_any : rule_match

type t

(** [create mem alloc ~rx_buffer_bytes ~tx_buffer_bytes] with total
    physical port buffer capacities. *)
val create : Physmem.t -> Alloc.t -> rx_buffer_bytes:int -> tx_buffer_bytes:int -> t

(** Arm a gray-failure plan: ingress may drop ([Faults.Rx_drop]) or
    bit-flip ([Faults.Rx_corrupt]) an arriving frame, and egress may eat
    a departing one ([Faults.Tx_drop], buffer still recycled). Unarmed
    ports behave exactly as before. *)
val set_faults : t -> Faults.t -> unit

(** [set_sink t sink ~track] counts RX enqueues, TX completions and drops
    (drops also get a point event), and forwards the sink to every
    per-NF packet scheduler, current and future. *)
val set_sink : t -> Obs.sink -> track:int -> unit

(** [add_rule t ~m ~nf] directs matching packets to [nf]. Rules are
    consulted in insertion order. *)
val add_rule : t -> m:rule_match -> nf:int -> unit

val remove_rules_for : t -> nf:int -> unit

(** [reserve t ?sched ~nf ~rx_bytes ~tx_bytes] claims port buffer space
    for an NF's virtual packet pipeline and installs its packet scheduler
    (default FIFO); fails when the physical ports lack space. *)
val reserve : ?sched:Sched.policy -> t -> nf:int -> rx_bytes:int -> tx_bytes:int -> (unit, string) result

(** The scheduling discipline of an NF's pipeline. *)
val scheduler_of : t -> nf:int -> Sched.policy option

val release : t -> nf:int -> unit

(** Total bytes currently reserved across NFs. Computed as a
    [Hashtbl.fold] sum — commutative by construction, so insertion
    order cannot leak into the result (the regression suite holds this
    to account). *)
val reserved_rx : t -> int

val reserved_tx : t -> int

(** Remaining unreserved space. *)
val rx_available : t -> int

val tx_available : t -> int

(** [deliver t frame] runs ingress for one wire frame. Returns the NF it
    was queued for, [Error] when no rule matches or the NF's pool is
    exhausted (packet dropped). *)
val deliver : t -> Bytes.t -> (int, string) result

(** [deliver_batch t frames] runs ingress for a list of frames in order
    and returns [(queued, rejected)].  Observationally identical to
    folding {!deliver} over [frames] — same per-frame fault draws, drops
    and scheduler state — but the RX counter is bumped once per batch
    instead of once per frame, which is what the batched front-end
    ([Fleet.Frontend]) amortizes.  [queued + rejected] is always
    [List.length frames]. *)
val deliver_batch : t -> Bytes.t list -> int * int

(** [rx_pop t ~nf] pops the next (physical address, length) descriptor. *)
val rx_pop : t -> nf:int -> (int * int) option

val rx_depth : t -> nf:int -> int

(** [transmit t ~nf ~addr ~len] copies [len] bytes at [addr] to the wire
    and recycles the buffer. *)
val transmit : t -> nf:int -> addr:int -> len:int -> unit

(** Frames that left on the wire, oldest first. *)
val wire_out : t -> Bytes.t list

val drop_count : t -> int

(** [recycle t ~addr] returns a popped RX buffer to the allocator without
    transmitting (the NF dropped the packet). *)
val recycle : t -> addr:int -> unit

(** [deliver_to t ~nf frame] queues a frame directly into [nf]'s pipeline,
    bypassing the switch rules — the cross-VPP transfer path that an
    extended S-NIC would use for chained functions (§4.8). Fails if the
    NF has no pipeline or its pool is exhausted. *)
val deliver_to : t -> nf:int -> Bytes.t -> (unit, string) result
