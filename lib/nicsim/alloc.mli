(** In-DRAM buffer allocator with scannable metadata.

    Commodity NIC firmware keeps one shared buffer allocator whose
    metadata lives in ordinary DRAM. The §3.3 attacks work by walking this
    metadata with raw physical reads to locate a victim's buffers. The
    allocator therefore stores its state *in simulated DRAM*, in a fixed
    little-endian layout, rather than in OCaml heap structures:

    {v
    base + 0:  magic "SNICALOC" (8 bytes)
    base + 8:  entry count N (u64)
    base + 16: N descriptors of 32 bytes:
               owner (u64: 0 = NIC OS, k+1 = NF k)
               addr  (u64)
               len   (u64)
               in_use(u64: 0/1)
    v} *)

type t

val magic : string

(** Byte offsets within a descriptor, for attack code that parses raw
    memory. *)
val desc_size : int

val metadata_base : t -> int

(** [init mem ~base ~heap_base ~heap_size ~max_entries] lays out the
    allocator. The metadata region and heap are claimed for the NIC OS. *)
val init : Physmem.t -> base:int -> heap_base:int -> heap_size:int -> max_entries:int -> t

(** [alloc t ?align ~owner len] carves a buffer aligned to [align]
    (a power of two, default one page) and records it in DRAM metadata;
    pages get [owner]. [None] when out of space. Launching functions
    requests natural alignment so their regions map with a handful of
    variable-size TLB entries. *)
val alloc : t -> ?align:int -> owner:Physmem.owner -> int -> int option

(** [free t addr] releases a buffer (zeroing is the caller's concern —
    commodity NICs do not scrub, which is part of the problem). *)
val free : t -> int -> unit

(** Allocations currently live, as (owner, addr, len). *)
val live : t -> (Physmem.owner * int * int) list

val heap_base : t -> int
val heap_size : t -> int
