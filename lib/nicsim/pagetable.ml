type access = Read | Write

let page_bits = 12
let page_size = 1 lsl page_bits
let entries_per_table = 512
let pte_valid = 1
let pte_writable = 2
let walk_dram_refs = 2

let check_table_page addr =
  if addr land (page_size - 1) <> 0 then invalid_arg "Pagetable: table pages must be page-aligned"

let create mem ~alloc =
  let root = alloc () in
  check_table_page root;
  ignore mem;
  root

let indices vaddr =
  if vaddr < 0 || vaddr >= 1 lsl 30 then invalid_arg "Pagetable: vaddr outside the 30-bit space";
  ((vaddr lsr 21) land (entries_per_table - 1), (vaddr lsr page_bits) land (entries_per_table - 1))

let map mem ~alloc ~root ~vaddr ~paddr ~writable =
  if vaddr land (page_size - 1) <> 0 || paddr land (page_size - 1) <> 0 then
    invalid_arg "Pagetable.map: addresses must be page-aligned";
  let l1, l2 = indices vaddr in
  let l1_slot = root + (8 * l1) in
  let l2_table =
    let pte = Physmem.read_u64 mem l1_slot in
    if pte land pte_valid <> 0 then pte land lnot (page_size - 1)
    else begin
      let t = alloc () in
      check_table_page t;
      Physmem.write_u64 mem l1_slot (t lor pte_valid);
      t
    end
  in
  let l2_slot = l2_table + (8 * l2) in
  if Physmem.read_u64 mem l2_slot land pte_valid <> 0 then invalid_arg "Pagetable.map: vaddr already mapped";
  Physmem.write_u64 mem l2_slot (paddr lor pte_valid lor (if writable then pte_writable else 0))

let map_range mem ~alloc ~root ~vaddr ~paddr ~len ~writable =
  if len land (page_size - 1) <> 0 then invalid_arg "Pagetable.map_range: length must be page-aligned";
  let pages = len / page_size in
  for i = 0 to pages - 1 do
    map mem ~alloc ~root ~vaddr:(vaddr + (i * page_size)) ~paddr:(paddr + (i * page_size)) ~writable
  done;
  pages

let walk mem ~root ~vaddr ~access =
  match indices vaddr with
  | exception Invalid_argument _ -> None
  | l1, l2 ->
    let pte1 = Physmem.read_u64 mem (root + (8 * l1)) in
    if pte1 land pte_valid = 0 then None
    else begin
      let l2_table = pte1 land lnot (page_size - 1) in
      let pte2 = Physmem.read_u64 mem (l2_table + (8 * l2)) in
      if pte2 land pte_valid = 0 then None
      else if access = Write && pte2 land pte_writable = 0 then None
      else Some ((pte2 land lnot (page_size - 1)) lor (vaddr land (page_size - 1)))
    end

let table_pages_for ~vaddr ~len =
  if len <= 0 then 1
  else begin
    let first = vaddr lsr 21 in
    let last = (vaddr + len - 1) lsr 21 in
    1 + (last - first + 1)
  end
