(* 31/131 polynomial rolling checksum folded to 30 bits — matches the
   width of the bench's other checksum metrics so values embed exactly
   in JSON floats.  Not cryptographic; it only needs to make unequal
   reports compare unequal with high probability. *)

let mask30 = 0x3FFFFFFF

let add acc s =
  let h = ref acc in
  String.iter (fun c -> h := (((!h * 131) + Char.code c) land mask30)) s;
  !h

let string s = add 17 s

(* A length marker between elements keeps [strings] sensitive to element
   boundaries, not just to the concatenation. *)
let strings ss = List.fold_left (fun acc s -> add ((acc * 31) + String.length s) s) 17 ss
