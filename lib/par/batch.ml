let iter_slices ~batch ~len f =
  if batch < 1 then invalid_arg "Par.Batch.iter_slices: batch must be >= 1";
  if len < 0 then invalid_arg "Par.Batch.iter_slices: len must be >= 0";
  let pos = ref 0 in
  while !pos < len do
    let n = min batch (len - !pos) in
    f ~pos:!pos ~len:n;
    pos := !pos + n
  done
