(* Bijective 62-bit mixing, SplitMix64-style.  Every step — xorshift,
   multiply by an odd constant mod 2^62, add a constant — is a bijection
   on the 62-bit space [Trace.Rng] masks to, so the whole finalizer is a
   bijection and [derive ~seed] is injective in [shard]:
   shard -> 2*shard+1 is injective into the odd residues, multiplying an
   odd number by the odd gamma is a bijection mod 2^62, and the final
   mix is a bijection.  The constants are the ones [lib/trace/rng.ml]
   already uses, truncated to fit OCaml's 63-bit int literals. *)

let mask = max_int (* 2^62 - 1 on 64-bit platforms *)
let gamma = 0x1E3779B97F4A7C15
let mult = 0x3C79AC492BA7B653

let mix x =
  let x = x land mask in
  let x = x lxor (x lsr 31) in
  let x = x * mult land mask in
  let x = x lxor (x lsr 29) in
  let x = x * gamma land mask in
  x lxor (x lsr 32)

let derive ~seed ~shard =
  if shard < 0 then invalid_arg "Par.Seed.derive: shard must be >= 0";
  mix ((mix seed + (((2 * shard) + 1) * gamma)) land mask)

let derive_many ~seed ~shards =
  if shards < 0 then invalid_arg "Par.Seed.derive_many: shards must be >= 0";
  Array.init shards (fun shard -> derive ~seed ~shard)
