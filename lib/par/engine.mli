(** Deterministic fan-out of independent shards across domains.

    The engine runs [shards] independent pieces of work on up to
    [domains] OCaml 5 domains and returns their results {e merged by
    shard index, never by completion order}.  Shard assignment is
    static — shard [i] always runs on worker [i mod domains] — so a
    run's structure is a pure function of [(shards, domains)], and the
    result array is byte-identical whether the shards ran on one domain
    or eight.

    The contract callers must keep (spelled out in PARALLELISM.md): the
    shard function must touch only state it created itself — a fresh
    [Nicsim.Machine], a fresh recording sink, a fresh harness.  Nothing
    in this repository's simulation stack has global mutable state, so
    any scenario that boots its own machine is safe to shard as-is. *)

val available_domains : unit -> int
(** What the host offers: [Domain.recommended_domain_count ()].  The
    engine never consults this on its own — callers decide how many
    domains to request — but the CLI and bench report it so a scaling
    curve can be read in context. *)

val map : ?domains:int -> shards:int -> (shard:int -> 'a) -> 'a array
(** [map ~domains ~shards f] computes [[| f ~shard:0; ...;
    f ~shard:(shards - 1) |]], running the shard functions on
    [min domains shards] domains ([domains] defaults to 1, meaning run
    everything on the calling domain).  Results are placed by shard
    index; completion order is irrelevant and unobservable.

    If a shard raises, every other shard still runs to completion, and
    the exception of the {e lowest-numbered} failing shard is re-raised
    (with its backtrace) after all workers have joined — again
    independent of timing.

    Raises [Invalid_argument] if [domains < 1] or [shards < 0]. *)

val map_seeded : ?domains:int -> seed:int -> shards:int -> (shard:int -> seed:int -> 'a) -> 'a array
(** [map_seeded ~seed ~shards f] is {!map} with shard [i] handed its
    {!Seed.derive}d seed: [f ~shard:i ~seed:(Seed.derive ~seed ~shard:i)].
    This is the one entry point the sharded scenarios (fleet, chaos,
    oracle) fan out through, so seed derivation cannot drift between
    them. *)
