(** Slicing a long run of work into fixed-size chunks.

    The batched dispatch loops (the oracle harness interpreting ops,
    [Pktio] delivering frames) all walk their input the same way: whole
    slices of [batch] items, then one short tail.  Centralizing the
    arithmetic here keeps the chunk boundaries identical everywhere —
    boundaries are part of the determinism contract, because per-chunk
    bookkeeping (counter flushes, drains) happens at them. *)

val iter_slices : batch:int -> len:int -> (pos:int -> len:int -> unit) -> unit
(** [iter_slices ~batch ~len f] calls [f ~pos ~len:n] for consecutive
    slices [pos, pos + n) covering [0, len) in order, each of size
    [batch] except a possibly shorter final slice.  Raises
    [Invalid_argument] if [batch < 1] or [len < 0]. *)
