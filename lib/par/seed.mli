(** Deterministic per-shard seed derivation.

    Every sharded run in this repository — fleet racks, chaos storms,
    oracle campaigns — gives shard [i] the seed
    [derive ~seed ~shard:i], never [seed + i].  The derivation is a
    bijective 62-bit mix (the same SplitMix64-style finalizer family as
    [Trace.Rng]), so:

    - for a fixed campaign [seed], distinct shards get distinct seeds
      (injectivity — [test/test_par.ml] checks it by qcheck);
    - neighbouring campaign seeds do not produce overlapping shard
      streams the way additive schemes do ([seed + 1] shard 0 vs
      [seed] shard 1);
    - the mapping is a pure function of [(seed, shard)], so any shard
      of a parallel run can be reproduced alone, on one domain, by
      feeding its derived seed to the sequential entry point.

    See PARALLELISM.md for the full determinism contract. *)

val derive : seed:int -> shard:int -> int
(** [derive ~seed ~shard] is the seed shard [shard] runs with.  The
    result is non-negative and fits the 62-bit space [Trace.Rng]
    masks to.  For a fixed [seed] the map [shard -> derive ~seed ~shard]
    is injective.  Raises [Invalid_argument] if [shard < 0]. *)

val derive_many : seed:int -> shards:int -> int array
(** [derive_many ~seed ~shards] is [[| derive ~seed ~shard:0; ...;
    derive ~seed ~shard:(shards - 1) |]].  Raises [Invalid_argument]
    if [shards < 0]. *)
