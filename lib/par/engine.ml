let available_domains () = Domain.recommended_domain_count ()

(* Static round-robin: worker w owns shards w, w+domains, w+2*domains...
   Each slot of [results] is written by exactly one worker, so the only
   synchronization needed is the happens-before edge Domain.join gives
   us.  Exceptions are captured per shard and the lowest-numbered
   failure is re-raised after the join — completion order never shows. *)
let map ?(domains = 1) ~shards f =
  if domains < 1 then invalid_arg "Par.Engine.map: domains must be >= 1";
  if shards < 0 then invalid_arg "Par.Engine.map: shards must be >= 0";
  if shards = 0 then [||]
  else if domains = 1 || shards = 1 then Array.init shards (fun shard -> f ~shard)
  else begin
    let domains = min domains shards in
    let results = Array.make shards None in
    let worker w () =
      let rec go shard =
        if shard < shards then begin
          (results.(shard) <-
            Some (try Ok (f ~shard) with e -> Error (e, Printexc.get_raw_backtrace ())));
          go (shard + domains)
        end
      in
      go w
    in
    let spawned = Array.init (domains - 1) (fun k -> Domain.spawn (worker (k + 1))) in
    worker 0 ();
    Array.iter Domain.join spawned;
    Array.mapi
      (fun _shard slot ->
        match slot with
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false (* every shard < shards is visited by its worker *))
      results
  end

let map_seeded ?domains ~seed ~shards f =
  map ?domains ~shards (fun ~shard -> f ~shard ~seed:(Seed.derive ~seed ~shard))
