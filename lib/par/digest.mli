(** Order-sensitive digests of run artifacts.

    The parallel-vs-sequential gates (test/test_par.ml, the bench [par]
    section, the CI [par-smoke] job) compare runs by digesting their
    textual reports.  The digest is a small deterministic checksum in
    the same 30-bit space the bench's other checksum metrics use, so it
    survives a round-trip through the flat JSON floats.  It is
    order-sensitive: permuting shard reports changes the digest, which
    is exactly what makes it a merge-order gate. *)

val string : string -> int
(** Digest of one string.  Deterministic across runs, platforms and
    domain counts; always in [0, 2^30). *)

val strings : string list -> int
(** Digest of a sequence of strings, sensitive to both content and
    order.  [strings [a; b]] differs from [strings [b; a]] (except for
    collisions), and from [strings [a ^ b]]. *)
