type t = { name : string; buffers : (string * int) list }

let kb = 1024
let mb = 1024 * 1024
let mbf = Costmodel.Page_packing.mb

(* Table 7. IQ = instruction queue, PktDB = packet descriptor buffers,
   PktB = packet buffers, ResB = result buffers, ParaB = parameter
   buffers, OutB = output buffers, SGP = scatter-gather-pointer buffers,
   Graph = DPI state machine, Dict = ZIP dictionary. *)
let dpi =
  {
    name = "DPI";
    buffers =
      [ ("IQ", 256 * kb); ("PktDB", 128 * kb); ("PktB", 2 * mb); ("ResB", 2 * mb); ("ParaB", 256 * kb);
        ("Graph", mbf 97.28) ];
  }

let zip =
  {
    name = "ZIP";
    buffers =
      [ ("IQ", 64 * kb); ("PktDB", 128 * kb); ("PktB", 2 * mb); ("ResB", 24 * kb); ("OutB", 2 * mb);
        ("SGP", 128 * mb); ("Dict", 32 * kb) ];
  }

let raid =
  { name = "RAID"; buffers = [ ("IQ", 4 * mb); ("PktDB", 128 * kb); ("PktB", 2 * mb); ("OutB", 2 * mb) ] }

let all = [ dpi; zip; raid ]

let total_bytes t = List.fold_left (fun acc (_, b) -> acc + b) 0 t.buffers
let total_mb t = float_of_int (total_bytes t) /. (1024. *. 1024.)

let tlb_entries t =
  Costmodel.Page_packing.entries ~page_sizes:Costmodel.Page_packing.equal_2mb (List.map snd t.buffers)
