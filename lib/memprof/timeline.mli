(** Memory-usage-over-time model for the Monitor NF (Figure 7).

    The paper replays a five-minute CAIDA slice and plots the NF's actual
    memory against the fixed S-NIC preallocation: the line shows a DPDK
    hugepage-initialization spike at startup, staircase growth as the
    flow table fills, and transient spikes at each HashMap doubling —
    peaking at the preallocation watermark while steady state needs only
    ~68% of it. This module reproduces that curve from the flow-arrival
    rate and the {!Hashmap_model}. *)

type point = {
  t_s : float;
  used_mb : float; (* memory actually in use at t *)
  prealloc_mb : float; (* the fixed S-NIC reservation (flat line) *)
}

(** Default parameters calibrated to the paper's Monitor numbers:
    1.8 M flows over 150 s, 113-byte table entries, 14.9 MB of steady DPDK
    base, and a startup staging copy. *)
val monitor :
  ?duration_s:float ->
  ?flows_per_sec:int ->
  ?entry_bytes:int ->
  ?base_mb:float ->
  ?init_staging_mb:float ->
  ?fixed_mb:float ->
  ?samples:int ->
  unit ->
  point list

(** Convenience inspection. *)
val peak_mb : point list -> float

val final_mb : point list -> float

(** Number of transient resize spikes visible in the series. *)
val spike_count : point list -> int
