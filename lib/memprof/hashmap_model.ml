let slots n =
  if n < 0 then invalid_arg "Hashmap_model.slots"
  else if n = 0 then 0
  else begin
    (* Smallest power of two whose 7/8 exceeds n. *)
    let rec go s = if s * 7 / 8 >= n then s else go (s * 2) in
    go 8
  end

let bytes ~entry_bytes n = slots n * (entry_bytes + 1)

let resize_peak_bytes ~entry_bytes n =
  let s = slots n in
  (s + (s / 2)) * (entry_bytes + 1)

let is_resize_point ~prev ~now = now > prev && slots prev <> slots now
