(** Memory-usage profiles of the six evaluation NFs (Table 6 / Appendix B)
    and the derived TLB sizing.

    The region sizes are the paper's measurements of its Rust NFs (with
    the §5.1 parameters); they are the *inputs* to the reproduced
    experiments — TLB entry counts under each page-size menu, the memory
    utilization ratios, and the TLB hardware cost of Table 5. *)

type t = {
  name : string;
  text_mb : float;
  data_mb : float;
  code_mb : float;
  heap_stack_mb : float;
}

(** FW, DPI, NAT, LB, LPM, Mon — in the paper's order. *)
val nfs : t list

val find : string -> t
val total_mb : t -> float

(** The four regions in bytes, for page packing. *)
val regions : t -> int list

(** [tlb_entries t ~page_sizes] — Table 6's right-hand columns. *)
val tlb_entries : t -> page_sizes:int list -> int

(** [max_entries ~page_sizes] over all six NFs — what Table 5 sizes the
    per-core TLB by. *)
val max_entries : page_sizes:int list -> int
