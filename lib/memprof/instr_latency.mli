(** Latency model for the trusted instructions (Figure 6 / Appendix C).

    The paper simulates nf_launch / nf_attest / nf_destroy on a 1.2 GHz
    Marvell NIC with its security co-processor. Phase rates recovered
    from the reported numbers: SHA-256 digesting at ~470 MB/s dominates
    nf_launch and scales with the function's memory; scrubbing at
    ~6.6 GB/s dominates nf_destroy; RSA signing fixes nf_attest at
    ~5.6 ms regardless of function size; TLB setup and
    denylist/allowlist updates are tens of microseconds. *)

type launch = { tlb_setup_ms : float; denylist_ms : float; sha_ms : float; total_ms : float }
type destroy = { allowlist_ms : float; scrub_ms : float; total_ms : float }

val launch : Profiles.t -> launch
val destroy : Profiles.t -> destroy

(** nf_attest: RSA signing + a constant-size SHA. *)
val attest_ms : float

(** The calibrated rates (for documentation and tests). *)
val sha_mb_per_s : float

val scrub_gb_per_s : float
val tlb_setup_ms : float
val denylist_ms : float
val allowlist_ms : float
