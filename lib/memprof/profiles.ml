type t = { name : string; text_mb : float; data_mb : float; code_mb : float; heap_stack_mb : float }

(* Table 6, columns 2-5. *)
let nfs =
  [
    { name = "FW"; text_mb = 0.87; data_mb = 0.08; code_mb = 2.50; heap_stack_mb = 13.75 };
    { name = "DPI"; text_mb = 1.34; data_mb = 0.56; code_mb = 2.59; heap_stack_mb = 46.65 };
    { name = "NAT"; text_mb = 0.86; data_mb = 0.05; code_mb = 2.49; heap_stack_mb = 40.48 };
    { name = "LB"; text_mb = 0.86; data_mb = 0.05; code_mb = 2.49; heap_stack_mb = 10.40 };
    { name = "LPM"; text_mb = 0.86; data_mb = 0.06; code_mb = 2.51; heap_stack_mb = 64.90 };
    { name = "Mon"; text_mb = 0.85; data_mb = 0.05; code_mb = 2.48; heap_stack_mb = 357.15 };
    (* CuckooGuard pair (not in the paper's Table 6): heap/stack is the
       fixed cuckoo-filter reservation (128 KiB filter + runtime arena),
       far below Mon's, so the TLB-entry maxima of Table 5 are
       unchanged. *)
    { name = "CKF"; text_mb = 0.85; data_mb = 0.05; code_mb = 2.48; heap_stack_mb = 8.13 };
    { name = "SYNP"; text_mb = 0.87; data_mb = 0.06; code_mb = 2.50; heap_stack_mb = 8.25 };
  ]

let find name =
  match List.find_opt (fun p -> String.equal p.name name) nfs with
  | Some p -> p
  | None -> invalid_arg ("Memprof.Profiles.find: unknown NF " ^ name)

let total_mb p = p.text_mb +. p.data_mb +. p.code_mb +. p.heap_stack_mb

let regions p =
  List.map Costmodel.Page_packing.mb [ p.text_mb; p.data_mb; p.code_mb; p.heap_stack_mb ]

let tlb_entries p ~page_sizes = Costmodel.Page_packing.entries ~page_sizes (regions p)

let max_entries ~page_sizes = List.fold_left (fun acc p -> max acc (tlb_entries p ~page_sizes)) 0 nfs
