(** SwissTable (Rust std HashMap) capacity and allocation model.

    The Rust NFs' dominant heap consumer is a flow-keyed HashMap. Its
    allocation behaviour explains both the Figure 7 spikes and the
    Table 8 utilization gaps: slots double when the 7/8 load factor is
    exceeded, and during a resize the old and new tables coexist. *)

(** [slots n] — power-of-two slot count holding [n] items at load <= 7/8
    (minimum 8 slots for n > 0; 0 for an empty map). *)
val slots : int -> int

(** [bytes ~entry_bytes n] — steady-state allocation for [n] items:
    slots * (entry + 1 control byte). *)
val bytes : entry_bytes:int -> int -> int

(** [resize_peak_bytes ~entry_bytes n] — worst transient while growing to
    hold [n] items: the new table plus the old (half-size) table. *)
val resize_peak_bytes : entry_bytes:int -> int -> int

(** [is_resize_point ~prev ~now] — does growing from [prev] to [now]
    items cross a doubling boundary? *)
val is_resize_point : prev:int -> now:int -> bool
