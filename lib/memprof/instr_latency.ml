(* Rates recovered from Appendix C: LB's 13.80 MB digests in 29.62 ms and
   Mon's 360.54 MB in 763.52 ms (~470 MB/s); scrubbing 360.54 MB takes
   54.23 ms (~6.6 GB/s); fixed phases are reported directly. *)
let sha_mb_per_s = 470.
let scrub_gb_per_s = 6.6
let tlb_setup_ms = 0.0196
let denylist_ms = 0.0044
let allowlist_ms = 0.0038
let attest_ms = 5.596 +. 0.004

type launch = { tlb_setup_ms : float; denylist_ms : float; sha_ms : float; total_ms : float }
type destroy = { allowlist_ms : float; scrub_ms : float; total_ms : float }

let launch p =
  let sha_ms = Profiles.total_mb p /. sha_mb_per_s *. 1000. in
  { tlb_setup_ms; denylist_ms; sha_ms; total_ms = tlb_setup_ms +. denylist_ms +. sha_ms }

let destroy p =
  let scrub_ms = Profiles.total_mb p /. (scrub_gb_per_s *. 1024.) *. 1000. in
  { allowlist_ms; scrub_ms; total_ms = allowlist_ms +. scrub_ms }
