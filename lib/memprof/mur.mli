(** Memory utilization ratios (Table 8): fixed S-NIC preallocation vs the
    memory the NF actually needs in steady state.

    The gap has two modeled causes: HashMap doubling (the preallocation
    must cover the transient where old and new tables coexist) and
    temporary DPDK initialization memory. FW, DPI and LPM preallocate
    exactly what they use (bounded structures sized up front). *)

type row = {
  name : string;
  prealloc_mb : float;
  used_mb : float; (* steady state *)
  mur_pct : float;
}

(** All six NFs, paper order. *)
val table8 : unit -> row list

val find : string -> row

(** Per-NF model parameters (documented calibration): HashMap entry bytes
    and steady DPDK base for the map-dominated NFs. *)
val nat_entry_bytes : int

val nat_base_mb : float
val mon_entry_bytes : int
