type row = { name : string; prealloc_mb : float; used_mb : float; mur_pct : float }

let mbf bytes = float_of_int bytes /. (1024. *. 1024.)

(* Calibrated model parameters (see DESIGN.md): a NAT translation entry
   carries the 5-tuple key, the rewritten endpoint and reverse-path
   bookkeeping; Monitor entries are a 5-tuple key plus a counter. *)
let nat_entry_bytes = 194
let nat_base_mb = 4.0
let mon_entry_bytes = 113

let fixed p = p.Profiles.text_mb +. p.Profiles.data_mb +. p.Profiles.code_mb

let row_of name ~used_mb =
  let p = Profiles.find name in
  let prealloc_mb = Profiles.total_mb p in
  { name; prealloc_mb; used_mb; mur_pct = 100. *. used_mb /. prealloc_mb }

let table8 () =
  (* FW, DPI, LPM preallocate bounded structures: used = preallocated. *)
  let exact name =
    let p = Profiles.find name in
    row_of name ~used_mb:(Profiles.total_mb p)
  in
  (* NAT: steady = fixed + DPDK base + one 65,535-flow table; the
     preallocation additionally covers the final doubling transient. *)
  let nat =
    let p = Profiles.find "NAT" in
    let used = fixed p +. nat_base_mb +. mbf (Hashmap_model.bytes ~entry_bytes:nat_entry_bytes 65_535) in
    row_of "NAT" ~used_mb:used
  in
  (* LB: tiny steady state (Maglev table + descriptors); the rest of the
     preallocation covers DPDK's temporary initialization block. *)
  let lb = row_of "LB" ~used_mb:4.16 in
  (* Monitor: from the Figure 7 timeline model. *)
  let mon =
    let series = Timeline.monitor () in
    row_of "Mon" ~used_mb:(Timeline.final_mb series)
  in
  (* CKF / SYNP preallocate a fixed cuckoo-filter reservation that is
     fully used by design (§4.8): used = preallocated, MUR 100%. *)
  [ exact "FW"; exact "DPI"; nat; lb; exact "LPM"; mon; exact "CKF"; exact "SYNP" ]

let find name =
  match List.find_opt (fun r -> String.equal r.name name) (table8 ()) with
  | Some r -> r
  | None -> invalid_arg ("Memprof.Mur.find: unknown NF " ^ name)
