(** Memory profiles of the three virtualized hardware accelerators
    (Table 7) and the derived TLB bank sizes. Buffer sizes are the
    LiquidIO defaults the paper profiles. *)

type t = {
  name : string;
  buffers : (string * int) list; (* (buffer name, bytes) *)
}

val dpi : t
val zip : t
val raid : t
val all : t list

val total_bytes : t -> int
val total_mb : t -> float

(** TLB bank entries at 2 MB pages (Table 7's last column). *)
val tlb_entries : t -> int
