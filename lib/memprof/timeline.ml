type point = { t_s : float; used_mb : float; prealloc_mb : float }

let mbf bytes = float_of_int bytes /. (1024. *. 1024.)

let monitor ?(duration_s = 150.) ?(flows_per_sec = 12_000) ?(entry_bytes = 113) ?(base_mb = 14.92)
    ?(init_staging_mb = 90.) ?(fixed_mb = 3.39) ?(samples = 150) () =
  let flows_at t = int_of_float (float_of_int flows_per_sec *. t) in
  let final_flows = flows_at duration_s in
  (* The preallocation must cover the worst transient: base + the final
     resize's coexisting old+new tables (what Table 6 reports). *)
  let prealloc_mb =
    fixed_mb +. base_mb +. mbf (Hashmap_model.resize_peak_bytes ~entry_bytes final_flows)
  in
  let steady t = fixed_mb +. base_mb +. mbf (Hashmap_model.bytes ~entry_bytes (flows_at t)) in
  let points = ref [] in
  let emit t_s used_mb = points := { t_s; used_mb; prealloc_mb } :: !points in
  for i = 0 to samples do
    let t = duration_s *. float_of_int i /. float_of_int samples in
    let t_prev = duration_s *. float_of_int (max 0 (i - 1)) /. float_of_int samples in
    (* DPDK hugepage initialization: a temporary normal-memory block holds
       the data being copied into hugepages during the first seconds. *)
    let staging = if t < 2.0 then init_staging_mb *. (1. -. (t /. 2.0)) else 0. in
    (* A HashMap doubling inside this interval momentarily keeps both
       tables alive: show the spike. *)
    if i > 0 && Hashmap_model.is_resize_point ~prev:(flows_at t_prev) ~now:(flows_at t) then
      emit (t -. (duration_s /. float_of_int samples /. 2.))
        (fixed_mb +. base_mb +. mbf (Hashmap_model.resize_peak_bytes ~entry_bytes (flows_at t)));
    emit t (steady t +. staging)
  done;
  List.rev !points

let peak_mb points = List.fold_left (fun acc p -> Float.max acc p.used_mb) 0. points

let final_mb points = match List.rev points with [] -> 0. | p :: _ -> p.used_mb

let spike_count points =
  (* A spike is a local maximum strictly above both neighbours. *)
  let arr = Array.of_list points in
  let n = Array.length arr in
  let count = ref 0 in
  for i = 1 to n - 2 do
    if arr.(i).used_mb > arr.(i - 1).used_mb +. 1. && arr.(i).used_mb > arr.(i + 1).used_mb +. 1. then incr count
  done;
  !count
