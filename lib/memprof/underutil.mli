(** The §4.8 underutilization trade-off, quantified.

    S-NIC deliberately forbids returning memory to the OS after
    nf_launch (resizing would leak information through the status of
    OS-managed resources), so a function is provisioned for its peak.
    The paper's prescription is to keep utilization high by creating and
    destroying fixed-size function instances as load varies. This module
    simulates a diurnal tenant load against three provisioning policies
    and reports the memory utilization each achieves. *)

type policy =
  | Static_peak (* one function provisioned for the daily peak *)
  | Elastic of { instance_mb : float } (* create/destroy fixed-size instances (the paper's §4.8 advice) *)
  | Dynamic (* hypothetical OS-shared allocation — the insecure baseline *)

val policy_name : policy -> string

type point = { t_h : float; demand_mb : float; provisioned_mb : float }

(** [simulate ?hours ?peak_mb ?samples_per_hour policy] runs the diurnal
    curve (30% base load, peak at 18:00). *)
val simulate : ?hours:float -> ?peak_mb:float -> ?samples_per_hour:int -> policy -> point list

(** Mean of demand/provisioned over the series. *)
val avg_utilization : point list -> float

(** Instance launches + teardowns over the series (the churn an Elastic
    policy pays; 0 for the others). *)
val churn : point list -> policy -> int
