type policy = Static_peak | Elastic of { instance_mb : float } | Dynamic

let policy_name = function
  | Static_peak -> "static peak provisioning"
  | Elastic { instance_mb } -> Printf.sprintf "elastic %.0fMB instances" instance_mb
  | Dynamic -> "dynamic (insecure baseline)"

type point = { t_h : float; demand_mb : float; provisioned_mb : float }

(* Diurnal curve: 30% floor, sinusoidal peak at 18:00. *)
let demand_at ~peak_mb t_h =
  let phase = 2. *. Float.pi *. (t_h -. 6.) /. 24. in
  peak_mb *. (0.3 +. (0.7 *. 0.5 *. (1. +. Float.sin phase)))

let provisioned ~peak_mb policy demand =
  match policy with
  | Static_peak -> peak_mb
  | Dynamic -> demand
  | Elastic { instance_mb } ->
    let n = int_of_float (Float.ceil (demand /. instance_mb)) in
    float_of_int (max 1 n) *. instance_mb

let simulate ?(hours = 24.) ?(peak_mb = 360.) ?(samples_per_hour = 4) policy =
  let n = int_of_float (hours *. float_of_int samples_per_hour) in
  List.init (n + 1) (fun i ->
      let t_h = float_of_int i /. float_of_int samples_per_hour in
      let demand_mb = demand_at ~peak_mb t_h in
      { t_h; demand_mb; provisioned_mb = provisioned ~peak_mb policy demand_mb })

let avg_utilization points =
  match points with
  | [] -> 0.
  | _ ->
    List.fold_left (fun acc p -> acc +. (p.demand_mb /. p.provisioned_mb)) 0. points
    /. float_of_int (List.length points)

let churn points policy =
  match policy with
  | Static_peak | Dynamic -> 0
  | Elastic { instance_mb } ->
    let instances p = int_of_float (Float.ceil (p.demand_mb /. instance_mb)) in
    let rec go acc = function
      | a :: (b :: _ as rest) -> go (acc + abs (instances b - instances a)) rest
      | _ -> acc
    in
    go 0 points
