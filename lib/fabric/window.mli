(** The receive-side anti-replay window (the RFC 4303 sliding bitmap,
    sized for the simulator).

    A window of size [w] accepts each sequence number at most once and
    refuses anything older than [high - w + 1], where [high] is the
    highest sequence number accepted so far.  [high] is monotone: once
    the window has slid forward it never slides back, so a replayed or
    badly reordered frame can never be re-admitted. *)

type t

type verdict =
  | Fresh  (** first sighting inside the window; now marked seen *)
  | Replay  (** inside the window but already accepted once *)
  | Stale  (** older than the window can vouch for — rejected *)

val verdict_to_string : verdict -> string

(** [create ~size] — [size] in [1..62] (the bitmap lives in one int).
    Raises [Invalid_argument] outside that range. *)
val create : size:int -> t

val size : t -> int

(** Highest sequence number accepted, [-1] before the first. *)
val high : t -> int

(** [admit t seq] judges [seq] (non-negative) and, when [Fresh], marks
    it seen.  Raises [Invalid_argument] on a negative [seq]. *)
val admit : t -> int -> verdict

(** Accepted / replay-rejected / stale-rejected counts so far. *)
val accepted : t -> int

val replays : t -> int
val stales : t -> int
