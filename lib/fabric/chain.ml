type stage = { st_nic : int; st_name : string; st_nf : Nf.Types.t }

type outcome =
  | Delivered of Net.Packet.t
  | Dropped_at of int
  | Link_reject of { hop : int; error : Channel.recv_error }

let outcome_to_string = function
  | Delivered _ -> "delivered"
  | Dropped_at i -> Printf.sprintf "dropped at stage %d" i
  | Link_reject { hop; error } ->
    Printf.sprintf "link %d rejected the frame: %s" hop (Channel.recv_error_to_string error)

(* Chrome-trace track range for fabric hops; QoS stopped at 922. *)
let hop_track_base = 930

type t = {
  mutable c_stages : stage array;
  mutable c_links : (Channel.tx * Channel.rx) array;
  mutable c_hops : int;
  mutable c_ts : int; (* deterministic span clock, one tick per hop *)
  c_sink : Obs.sink;
}

let create ?(sink = Obs.null) stages ~links =
  let stages = Array.of_list stages in
  let links = Array.of_list links in
  if Array.length stages = 0 then invalid_arg "Fabric.Chain.create: empty chain";
  if Array.length links <> Array.length stages - 1 then
    invalid_arg "Fabric.Chain.create: need exactly one link between consecutive stages";
  { c_stages = stages; c_links = links; c_hops = 0; c_ts = 0; c_sink = sink }

let stages t = Array.length t.c_stages
let stage_nic t i = t.c_stages.(i).st_nic
let stage_name t i = t.c_stages.(i).st_name
let hop_count t = t.c_hops

let sum_links t f = Array.fold_left (fun acc (_, rx) -> acc + f rx) 0 t.c_links
let mac_failures t = sum_links t Channel.mac_failures
let replay_rejects t = sum_links t Channel.replay_rejects
let stale_rejects t = sum_links t Channel.stale_rejects

let check_hop t hop =
  if hop < 0 || hop >= Array.length t.c_links then invalid_arg "Fabric.Chain: hop index out of range"

let link_tx t ~hop =
  check_hop t hop;
  fst t.c_links.(hop)

let link_rx t ~hop =
  check_hop t hop;
  snd t.c_links.(hop)

(* One link crossing: serialize, MAC, authenticate, re-parse.  The span
   covers the wire transfer; its arg is the payload length. *)
let cross t ~hop pkt =
  let tx, rx = t.c_links.(hop) in
  let wire = Bytes.to_string (Net.Packet.serialize pkt) in
  let ts = t.c_ts in
  t.c_ts <- ts + 1;
  let track = hop_track_base + hop in
  Obs.span_begin t.c_sink ~ts ~track Obs.Fabric "fabric_hop" ~arg:(String.length wire);
  let r =
    match Channel.recv rx (Channel.send tx wire) with
    | Error e -> Error (Link_reject { hop; error = e })
    | Ok payload -> (
      t.c_hops <- t.c_hops + 1;
      Obs.count t.c_sink Obs.Fabric_hop;
      match Net.Packet.parse (Bytes.of_string payload) with
      | Ok pkt -> Ok pkt
      | Error _ ->
        (* Authenticated payloads are packets we serialized ourselves;
           a parse failure means the channel delivered wrong bytes. *)
        Error (Link_reject { hop; error = Channel.Decode Frame.Bad_mac }))
  in
  Obs.span_end t.c_sink ~ts:(ts + 1) ~track Obs.Fabric "fabric_hop" ~arg:(String.length wire);
  r

let feed t pkt =
  let n = Array.length t.c_stages in
  let rec go i pkt =
    match t.c_stages.(i).st_nf.Nf.Types.process pkt with
    | Nf.Types.Drop _ -> Dropped_at i
    | Nf.Types.Forward pkt ->
      if i = n - 1 then Delivered pkt
      else begin
        match cross t ~hop:i pkt with
        | Ok pkt -> go (i + 1) pkt
        | Error o -> o
      end
  in
  go 0 pkt

let relink t ~hop stage (tx, rx) =
  check_hop t hop;
  let old_tx, _ = t.c_links.(hop) in
  let backlog = Channel.buffered old_tx in
  t.c_stages.(hop + 1) <- stage;
  t.c_links.(hop) <- (tx, rx);
  Obs.count t.c_sink Obs.Fabric_failover;
  (* State replay: push the buffered payloads through the new channel so
     the re-placed stage rebuilds its flow state.  Verdicts are ignored —
     these frames already finished their first traversal. *)
  List.fold_left
    (fun n payload ->
      match Channel.recv rx (Channel.send tx payload) with
      | Error _ -> n
      | Ok payload -> (
        Obs.count t.c_sink Obs.Fabric_hop;
        t.c_hops <- t.c_hops + 1;
        match Net.Packet.parse (Bytes.of_string payload) with
        | Error _ -> n
        | Ok pkt ->
          ignore (stage.st_nf.Nf.Types.process pkt);
          n + 1))
    0 backlog
