(** Attested channel endpoints: where fabric keys come from.

    An endpoint names one running NF on one NIC.  Establishing a channel
    runs the full Appendix-A attestation handshake against {e both}
    endpoints — vendor cert chain, quote signature, expected measurement
    — and derives the channel key from the two session keys, so a NIC
    whose attestation is stale, whose image was mis-staged, or whose
    identity is a clone of another NIC's can never hold a fabric key:
    establishment fails closed with a typed error. *)

type t

(** [make ?alive ?expected_measurement ~nic ~insns ~nf ()] — [alive]
    (default always-true) is polled before any handshake so a dead or
    quarantined NIC fails closed; [expected_measurement] is what the
    verifier demands from the quote (omit to accept the reported
    measurement, as local tooling does). *)
val make :
  ?alive:(unit -> bool) -> ?expected_measurement:string -> nic:int -> insns:Snic.Instructions.t -> nf:int -> unit -> t

val nic : t -> int
val nf : t -> int

(** Registry of EK identities seen across establishments.  One EK may
    serve many channels on its own NIC; the same EK surfacing under a
    different NIC id is a cloned identity and is refused. *)
type registry

val registry_create : unit -> registry

type error =
  | Endpoint_down of int  (** [alive] said no — dead or quarantined NIC *)
  | Attest_failed of { nic : int; reason : string }
      (** handshake refused: bad chain, bad signature, or a measurement
          that does not match the staged image *)
  | Identity_reuse of { nic : int; prior : int }
      (** this NIC presented an EK already registered to [prior] *)

val error_to_string : error -> string

(** [derive_key ~secret_src ~secret_dst ~chan ~src ~dst] — the channel
    key: an HMAC-based expand of both session keys bound to the channel
    id and both NIC ids, so distinct identities and distinct channels
    can never collide on a key. *)
val derive_key : secret_src:string -> secret_dst:string -> chan:int -> src:int -> dst:int -> string

(** [establish ?registry ?sink ?window ?buffer rng ~vendor_public ~chan
    src dst] attests both endpoints and returns the channel halves —
    [tx] for [src], [rx] for [dst].  Fails closed on the first liveness,
    attestation or identity failure. *)
val establish :
  ?registry:registry ->
  ?sink:Obs.sink ->
  ?window:int ->
  ?buffer:int ->
  ?tap:(string -> unit) ->
  Random.State.t ->
  vendor_public:Crypto.Rsa.public ->
  chan:int ->
  t ->
  t ->
  (Channel.tx * Channel.rx, error) result
