(** Cross-NIC NF chains: one logical pipeline whose stages live on
    different NICs, every inter-stage hop crossing an authenticated
    {!Channel} (the SuperNIC-style disaggregation the ROADMAP names).

    A packet is processed by stage 0; a [Forward] verdict serializes it,
    sends it over the hop's channel, authenticates it on the far side,
    re-parses it and hands it to the next stage.  Every hop bumps the
    [fabric_hop] counter and emits one trace span on the fabric track
    range (930 + hop index). *)

type stage = { st_nic : int; st_name : string; st_nf : Nf.Types.t }

type outcome =
  | Delivered of Net.Packet.t  (** the last stage forwarded it *)
  | Dropped_at of int  (** stage [i]'s NF dropped it — a verdict, not a failure *)
  | Link_reject of { hop : int; error : Channel.recv_error }
      (** the hop's receiver refused the frame (MAC / replay / window) *)

val outcome_to_string : outcome -> string

type t

(** [create ?sink stages ~links] — [links] connects consecutive stages,
    so it must hold exactly [List.length stages - 1] channel pairs.
    Raises [Invalid_argument] on a length mismatch or an empty chain. *)
val create : ?sink:Obs.sink -> stage list -> links:(Channel.tx * Channel.rx) list -> t

val stages : t -> int
val stage_nic : t -> int -> int
val stage_name : t -> int -> string

(** Frames that crossed an inter-NIC link so far (all hops). *)
val hop_count : t -> int

(** Sum of {!Channel.mac_failures} over every link. *)
val mac_failures : t -> int

val replay_rejects : t -> int
val stale_rejects : t -> int

(** The sender half of hop [i] (stage [i] -> stage [i+1]) — the fabric
    scenario uses it to forge adversarial wire frames. *)
val link_tx : t -> hop:int -> Channel.tx

val link_rx : t -> hop:int -> Channel.rx

(** [feed t pkt] pushes one packet through the whole chain. *)
val feed : t -> Net.Packet.t -> outcome

(** [relink t ~hop stage link] re-homes the stage {e downstream} of
    [hop] (stage [hop + 1]) onto a fresh NIC: installs the re-placed
    stage and its new channel, then replays the old sender's buffered
    payloads through the new link into the new stage so its flow state
    (whitelists, trackers) catches up.  Replayed frames stop at the
    re-placed stage — they already traversed the rest of the chain
    before the failure.  Returns the number of payloads replayed.
    Raises [Invalid_argument] on a hop index out of range. *)
val relink : t -> hop:int -> stage -> Channel.tx * Channel.rx -> int
