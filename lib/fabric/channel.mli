(** One authenticated, unidirectional inter-NIC channel.

    The sender half owns the monotone sequence counter and a bounded
    replay buffer of recent payloads (the flow state a failover replays
    into a re-placed stage); the receiver half owns the anti-replay
    {!Window} and the rejection counters the scenario gates pin.  Both
    halves hold the same attestation-derived session key; {!Frame} binds
    every payload to (key, channel id, sequence number). *)

type tx
type rx

type recv_error =
  | Decode of Frame.error  (** truncated / garbage / MAC mismatch *)
  | Wrong_channel of int  (** authenticated frame from another channel *)
  | Replayed of int  (** sequence number already accepted *)
  | Stale of int  (** older than the receive window *)

val recv_error_to_string : recv_error -> string

(** [pair ?sink ?window ?buffer ?tap ~key ~chan ()] builds both halves.
    [window] (default 32) is the receive window size, [buffer] (default
    1024) the sender's replay-buffer capacity in payloads.  [sink]
    receives the [fabric_*] hot-path counters.  [tap] sees every wire
    frame on send — the scenario's adversary captures traffic there. *)
val pair :
  ?sink:Obs.sink -> ?window:int -> ?buffer:int -> ?tap:(string -> unit) -> key:string -> chan:int -> unit -> tx * rx

val chan : tx -> int

(** [send tx payload] encodes, MACs and buffers one payload; returns the
    wire bytes.  Raises [Invalid_argument] if the payload exceeds
    {!Frame.max_payload}. *)
val send : tx -> string -> string

(** [recv rx wire] authenticates and de-duplicates one wire frame. *)
val recv : rx -> string -> (string, recv_error) result

(** Payloads still held by the replay buffer, oldest first — at most the
    [buffer] newest sends. *)
val buffered : tx -> string list

(** {2 Counters} *)

val sent : tx -> int
val delivered : rx -> int

(** Frames refused because the MAC (or the frame itself) did not verify. *)
val mac_failures : rx -> int

val replay_rejects : rx -> int
val stale_rejects : rx -> int
val wrong_channel_rejects : rx -> int
