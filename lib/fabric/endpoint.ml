type t = {
  e_nic : int;
  e_insns : Snic.Instructions.t;
  e_nf : int;
  e_expected : string option;
  e_alive : unit -> bool;
}

let make ?(alive = fun () -> true) ?expected_measurement ~nic ~insns ~nf () =
  { e_nic = nic; e_insns = insns; e_nf = nf; e_expected = expected_measurement; e_alive = alive }

let nic t = t.e_nic
let nf t = t.e_nf

type registry = (string, int) Hashtbl.t

let registry_create () : registry = Hashtbl.create 16

type error =
  | Endpoint_down of int
  | Attest_failed of { nic : int; reason : string }
  | Identity_reuse of { nic : int; prior : int }

let error_to_string = function
  | Endpoint_down nic -> Printf.sprintf "NIC %d is down or quarantined" nic
  | Attest_failed { nic; reason } -> Printf.sprintf "NIC %d failed attestation: %s" nic reason
  | Identity_reuse { nic; prior } ->
    Printf.sprintf "NIC %d presented an EK already registered to NIC %d" nic prior

let derive_key ~secret_src ~secret_dst ~chan ~src ~dst =
  Crypto.Hmac.derive ~secret:(secret_src ^ secret_dst)
    ~label:(Printf.sprintf "fabric-chan-%d:%d->%d" chan src dst)

(* The EK is the NIC's burned-in identity: certificate subject plus the
   public key itself.  The per-boot AK deliberately stays out of the
   fingerprint — rebooting must not look like a new NIC. *)
let fingerprint (att : Snic.Attestation.attester) =
  let cert = Snic.Identity.ek_certificate att.Snic.Attestation.identity in
  cert.Crypto.Rsa.subject ^ "|" ^ Crypto.Rsa.public_to_string cert.Crypto.Rsa.key

let ( let* ) = Result.bind

let attest_one rng ~vendor_public ep =
  if not (ep.e_alive ()) then Error (Endpoint_down ep.e_nic)
  else
    match Snic.Attestation.attester_of_nf ep.e_insns ~id:ep.e_nf with
    | Error e -> Error (Attest_failed { nic = ep.e_nic; reason = Snic.Instructions.error_to_string e })
    | Ok att -> (
      match Snic.Session.handshake rng ~vendor_public ?expected_measurement:ep.e_expected att with
      | Ok (verifier_key, _prover_key) -> Ok (att, verifier_key)
      | Error reason -> Error (Attest_failed { nic = ep.e_nic; reason }))

let check_identity registry ep att =
  match registry with
  | None -> Ok ()
  | Some reg -> (
    let fp = fingerprint att in
    match Hashtbl.find_opt reg fp with
    | Some prior when prior <> ep.e_nic -> Error (Identity_reuse { nic = ep.e_nic; prior })
    | Some _ -> Ok ()
    | None ->
      Hashtbl.replace reg fp ep.e_nic;
      Ok ())

let establish ?registry ?(sink = Obs.null) ?window ?buffer ?tap rng ~vendor_public ~chan src dst =
  let* att_src, key_src = attest_one rng ~vendor_public src in
  let* () = check_identity registry src att_src in
  let* att_dst, key_dst = attest_one rng ~vendor_public dst in
  let* () = check_identity registry dst att_dst in
  let key = derive_key ~secret_src:key_src ~secret_dst:key_dst ~chan ~src:src.e_nic ~dst:dst.e_nic in
  Obs.count sink Obs.Fabric_handshake;
  Ok (Channel.pair ~sink ?window ?buffer ?tap ~key ~chan ())
