(** The fabric wire format: one MAC'd, length-prefixed frame.

    Every inter-NIC message travels as
    [magic | chan u32 | seq u32 | len u32 | payload | mac], all integers
    big-endian.  The MAC is HMAC-SHA256 over the header and payload under
    the channel's attestation-derived session key, so a frame only
    authenticates against the channel it was sent on and the key both
    endpoints derived from their handshakes.  Decoding is strict in the
    [Snic.Wire] tradition: short input, an oversize length field, a bad
    magic, a bad MAC and trailing bytes are all typed errors, never a
    best-effort parse. *)

type t = { chan : int; seq : int; payload : string }

(** Frame header magic, ["SNF1"]. *)
val magic : string

(** Hard ceiling on [payload] length (64 KiB): a corrupt length field
    fails fast instead of asking the decoder to allocate garbage. *)
val max_payload : int

(** Encoded overhead around the payload: magic + 3 integers + MAC. *)
val overhead : int

type error =
  | Truncated of { need : int; got : int }  (** input shorter than claimed *)
  | Bad_magic  (** first four bytes are not {!magic} *)
  | Oversize of int  (** length field beyond {!max_payload} *)
  | Bad_mac  (** MAC mismatch under the given key *)
  | Trailing of int  (** [decode_exact]: bytes left after one frame *)

val error_to_string : error -> string

(** [encode ~key t] serializes and MACs one frame.  Raises
    [Invalid_argument] if [chan] or [seq] is negative or outside u32, or
    the payload exceeds {!max_payload}. *)
val encode : key:string -> t -> string

(** [decode ~key s ~pos] parses one frame starting at [pos]; returns the
    frame and the position just past it, so callers can walk a
    concatenated stream. *)
val decode : key:string -> string -> pos:int -> (t * int, error) result

(** [decode_exact ~key s] parses exactly one frame spanning all of [s];
    trailing bytes are a {!Trailing} error. *)
val decode_exact : key:string -> string -> (t, error) result
