type tx = {
  t_key : string;
  t_chan : int;
  mutable t_next : int;
  t_cap : int;
  mutable t_buf : string list; (* newest first; capped at t_cap *)
  mutable t_buf_n : int;
  mutable t_sent : int;
  t_tap : string -> unit;
  t_sink : Obs.sink;
}

type rx = {
  r_key : string;
  r_chan : int;
  r_window : Window.t;
  mutable r_delivered : int;
  mutable r_mac_fail : int;
  mutable r_wrong_chan : int;
  r_sink : Obs.sink;
}

type recv_error =
  | Decode of Frame.error
  | Wrong_channel of int
  | Replayed of int
  | Stale of int

let recv_error_to_string = function
  | Decode e -> Frame.error_to_string e
  | Wrong_channel c -> Printf.sprintf "frame belongs to channel %d" c
  | Replayed s -> Printf.sprintf "sequence %d already accepted (replay)" s
  | Stale s -> Printf.sprintf "sequence %d older than the receive window" s

let pair ?(sink = Obs.null) ?(window = 32) ?(buffer = 1024) ?(tap = fun _ -> ()) ~key ~chan () =
  if buffer < 0 then invalid_arg "Fabric.Channel.pair: negative buffer capacity";
  ( { t_key = key; t_chan = chan; t_next = 0; t_cap = buffer; t_buf = []; t_buf_n = 0; t_sent = 0; t_tap = tap; t_sink = sink },
    {
      r_key = key;
      r_chan = chan;
      r_window = Window.create ~size:window;
      r_delivered = 0;
      r_mac_fail = 0;
      r_wrong_chan = 0;
      r_sink = sink;
    } )

let chan tx = tx.t_chan

let send tx payload =
  let wire = Frame.encode ~key:tx.t_key { Frame.chan = tx.t_chan; seq = tx.t_next; payload } in
  tx.t_next <- tx.t_next + 1;
  tx.t_sent <- tx.t_sent + 1;
  if tx.t_cap > 0 then begin
    tx.t_buf <- payload :: tx.t_buf;
    if tx.t_buf_n >= tx.t_cap then
      (* Drop the oldest buffered payload; the cap bounds failover state. *)
      tx.t_buf <- List.filteri (fun i _ -> i < tx.t_cap) tx.t_buf
    else tx.t_buf_n <- tx.t_buf_n + 1
  end;
  Obs.count tx.t_sink Obs.Fabric_tx;
  tx.t_tap wire;
  wire

let recv rx wire =
  match Frame.decode_exact ~key:rx.r_key wire with
  | Error e ->
    rx.r_mac_fail <- rx.r_mac_fail + 1;
    Obs.count rx.r_sink Obs.Fabric_mac_fail;
    Error (Decode e)
  | Ok f when f.Frame.chan <> rx.r_chan ->
    rx.r_wrong_chan <- rx.r_wrong_chan + 1;
    Obs.count rx.r_sink Obs.Fabric_mac_fail;
    Error (Wrong_channel f.Frame.chan)
  | Ok f -> (
    match Window.admit rx.r_window f.Frame.seq with
    | Window.Fresh ->
      rx.r_delivered <- rx.r_delivered + 1;
      Obs.count rx.r_sink Obs.Fabric_rx;
      Ok f.Frame.payload
    | Window.Replay ->
      Obs.count rx.r_sink Obs.Fabric_replay_drop;
      Error (Replayed f.Frame.seq)
    | Window.Stale ->
      Obs.count rx.r_sink Obs.Fabric_stale_drop;
      Error (Stale f.Frame.seq))

let buffered tx = List.rev tx.t_buf
let sent tx = tx.t_sent
let delivered rx = rx.r_delivered
let mac_failures rx = rx.r_mac_fail + rx.r_wrong_chan
let replay_rejects rx = Window.replays rx.r_window
let stale_rejects rx = Window.stales rx.r_window
let wrong_channel_rejects rx = rx.r_wrong_chan
