type t = {
  w : int;
  mutable high : int; (* highest accepted; -1 before the first *)
  mutable seen : int; (* bit i = (high - i) already accepted *)
  mutable accepted : int;
  mutable replays : int;
  mutable stales : int;
}

type verdict = Fresh | Replay | Stale

let verdict_to_string = function Fresh -> "fresh" | Replay -> "replay" | Stale -> "stale"

let create ~size =
  if size < 1 || size > 62 then invalid_arg "Fabric.Window.create: size must be in 1..62";
  { w = size; high = -1; seen = 0; accepted = 0; replays = 0; stales = 0 }

let size t = t.w
let high t = t.high
let accepted t = t.accepted
let replays t = t.replays
let stales t = t.stales

let admit t seq =
  if seq < 0 then invalid_arg "Fabric.Window.admit: negative sequence number";
  if seq > t.high then begin
    (* Slide forward: shift the bitmap by the advance and mark [seq]. *)
    let advance = seq - t.high in
    t.seen <- (if t.high < 0 || advance > 62 then 1 else (t.seen lsl advance) lor 1);
    t.high <- seq;
    t.accepted <- t.accepted + 1;
    Fresh
  end
  else begin
    let back = t.high - seq in
    if back >= t.w then begin
      t.stales <- t.stales + 1;
      Stale
    end
    else if t.seen land (1 lsl back) <> 0 then begin
      t.replays <- t.replays + 1;
      Replay
    end
    else begin
      t.seen <- t.seen lor (1 lsl back);
      t.accepted <- t.accepted + 1;
      Fresh
    end
  end
