type t = { chan : int; seq : int; payload : string }

let magic = "SNF1"
let max_payload = 1 lsl 16
let mac_len = 32 (* HMAC-SHA256 *)
let overhead = 4 + 4 + 4 + 4 + mac_len
let u32_max = 0xFFFFFFFF

type error =
  | Truncated of { need : int; got : int }
  | Bad_magic
  | Oversize of int
  | Bad_mac
  | Trailing of int

let error_to_string = function
  | Truncated { need; got } -> Printf.sprintf "truncated frame: need %d bytes, got %d" need got
  | Bad_magic -> "bad frame magic"
  | Oversize n -> Printf.sprintf "length field %d exceeds the %d-byte payload ceiling" n max_payload
  | Bad_mac -> "frame MAC does not verify"
  | Trailing n -> Printf.sprintf "%d trailing bytes after the frame" n

let put_u32 b v =
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr (v land 0xFF))

let get_u32 s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let encode ~key t =
  if t.chan < 0 || t.chan > u32_max then invalid_arg "Fabric.Frame.encode: chan outside u32";
  if t.seq < 0 || t.seq > u32_max then invalid_arg "Fabric.Frame.encode: seq outside u32";
  if String.length t.payload > max_payload then invalid_arg "Fabric.Frame.encode: payload too long";
  let b = Buffer.create (overhead + String.length t.payload) in
  Buffer.add_string b magic;
  put_u32 b t.chan;
  put_u32 b t.seq;
  put_u32 b (String.length t.payload);
  Buffer.add_string b t.payload;
  let mac = Crypto.Hmac.mac ~key (Buffer.contents b) in
  Buffer.add_string b mac;
  Buffer.contents b

let decode ~key s ~pos =
  let avail = String.length s - pos in
  if avail < 16 then Error (Truncated { need = 16; got = max avail 0 })
  else if not (String.equal (String.sub s pos 4) magic) then Error Bad_magic
  else begin
    let chan = get_u32 s (pos + 4) in
    let seq = get_u32 s (pos + 8) in
    let len = get_u32 s (pos + 12) in
    if len > max_payload then Error (Oversize len)
    else begin
      let need = 16 + len + mac_len in
      if avail < need then Error (Truncated { need; got = avail })
      else begin
        let payload = String.sub s (pos + 16) len in
        let mac = String.sub s (pos + 16 + len) mac_len in
        let expect = Crypto.Hmac.mac ~key (String.sub s pos (16 + len)) in
        if not (String.equal mac expect) then Error Bad_mac
        else Ok ({ chan; seq; payload }, pos + need)
      end
    end
  end

let decode_exact ~key s =
  match decode ~key s ~pos:0 with
  | Error e -> Error e
  | Ok (t, stop) ->
    let rest = String.length s - stop in
    if rest > 0 then Error (Trailing rest) else Ok t
