(* Little-endian limb representation in base 2^26. The base is chosen so
   that a limb product (2^52) plus carries stays well inside OCaml's 63-bit
   native ints. Values are normalized: no most-significant zero limbs, and
   zero is the empty array. *)

let limb_bits = 26
let base = 1 lsl limb_bits
let limb_mask = base - 1

type t = int array

let zero : t = [||]

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let is_zero a = Array.length a = 0

let of_int n =
  if n < 0 then invalid_arg "Bigint.of_int: negative";
  let rec limbs n acc = if n = 0 then acc else limbs (n lsr limb_bits) (n land limb_mask :: acc) in
  let l = List.rev (limbs n []) in
  Array.of_list l

let one = of_int 1
let two = of_int 2

let to_int a =
  (* An OCaml int holds 62 value bits; three limbs (78 bits) may overflow. *)
  let n = Array.length a in
  if n = 0 then Some 0
  else if n > 3 then None
  else begin
    let v = ref 0 and ok = ref true in
    for i = n - 1 downto 0 do
      if !v > (max_int - a.(i)) lsr limb_bits then ok := false
      else v := (!v lsl limb_bits) lor a.(i)
    done;
    if !ok then Some !v else None
  end

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let equal a b = compare a b = 0

let bit_length a =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((n - 1) * limb_bits) + width top 0
  end

let testbit a i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  r.(n) <- !carry;
  normalize r

let sub a b =
  if compare a b < 0 then invalid_arg "Bigint.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  normalize r

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let s = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- s land limb_mask;
        carry := s lsr limb_bits
      done;
      (* Propagate the final carry; it can exceed one limb. *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land limb_mask;
        carry := s lsr limb_bits;
        incr k
      done
    done;
    normalize r
  end

let shift_left a bits =
  if bits < 0 then invalid_arg "Bigint.shift_left";
  if is_zero a || bits = 0 then a
  else begin
    let limb_shift = bits / limb_bits and bit_shift = bits mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bit_shift in
      r.(i + limb_shift) <- r.(i + limb_shift) lor (v land limb_mask);
      r.(i + limb_shift + 1) <- v lsr limb_bits
    done;
    normalize r
  end

let shift_right a bits =
  if bits < 0 then invalid_arg "Bigint.shift_right";
  if is_zero a || bits = 0 then a
  else begin
    let limb_shift = bits / limb_bits and bit_shift = bits mod limb_bits in
    let la = Array.length a in
    if limb_shift >= la then zero
    else begin
      let n = la - limb_shift in
      let r = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limb_shift) lsr bit_shift in
        let hi =
          if bit_shift = 0 || i + limb_shift + 1 >= la then 0
          else (a.(i + limb_shift + 1) lsl (limb_bits - bit_shift)) land limb_mask
        in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

(* Knuth TAOCP vol.2 Algorithm D. Divisor is normalized (top limb has its
   high bit set) by a common left shift that leaves the quotient unchanged
   and the remainder shifted. *)
let divmod_knuth u v =
  let n = Array.length v in
  let shift = limb_bits - (bit_length v - (n - 1) * limb_bits) in
  let u = shift_left u shift and v = shift_left v shift in
  let n = Array.length v in
  let m = Array.length u - n in
  if m < 0 then (zero, shift_right u shift)
  else begin
    (* Working copy of u with one extra high limb. *)
    let w = Array.make (Array.length u + 1) 0 in
    Array.blit u 0 w 0 (Array.length u);
    let q = Array.make (m + 1) 0 in
    let vtop = v.(n - 1) in
    let vsec = if n >= 2 then v.(n - 2) else 0 in
    for j = m downto 0 do
      let num = (w.(j + n) * base) + w.(j + n - 1) in
      let qhat = ref (num / vtop) and rhat = ref (num mod vtop) in
      let adjust = ref true in
      while !adjust do
        if !qhat >= base || !qhat * vsec > (!rhat * base) + (if j + n - 2 >= 0 then w.(j + n - 2) else 0)
        then begin
          decr qhat;
          rhat := !rhat + vtop;
          if !rhat >= base then adjust := false
        end
        else adjust := false
      done;
      (* Multiply and subtract: w[j .. j+n] -= qhat * v. *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = !qhat * v.(i) + !carry in
        carry := p lsr limb_bits;
        let d = w.(i + j) - (p land limb_mask) - !borrow in
        if d < 0 then begin
          w.(i + j) <- d + base;
          borrow := 1
        end else begin
          w.(i + j) <- d;
          borrow := 0
        end
      done;
      let d = w.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* qhat was one too large: add v back once. *)
        w.(j + n) <- d + base;
        decr qhat;
        let c = ref 0 in
        for i = 0 to n - 1 do
          let s = w.(i + j) + v.(i) + !c in
          w.(i + j) <- s land limb_mask;
          c := s lsr limb_bits
        done;
        w.(j + n) <- (w.(j + n) + !c) land limb_mask
      end
      else w.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = normalize (Array.sub w 0 n) in
    (normalize q, shift_right r shift)
  end

let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    (* Short division by a single limb. *)
    let d = b.(0) in
    let la = Array.length a in
    let q = Array.make la 0 in
    let r = ref 0 in
    for i = la - 1 downto 0 do
      let cur = (!r lsl limb_bits) lor a.(i) in
      q.(i) <- cur / d;
      r := cur mod d
    done;
    (normalize q, of_int !r)
  end
  else divmod_knuth a b

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let modpow ~base:b ~exponent ~modulus =
  if is_zero modulus then raise Division_by_zero;
  if equal modulus one then zero
  else begin
    let b = ref (rem b modulus) in
    let result = ref one in
    let bits = bit_length exponent in
    for i = 0 to bits - 1 do
      if testbit exponent i then result := rem (mul !result !b) modulus;
      if i < bits - 1 then b := rem (mul !b !b) modulus
    done;
    !result
  end

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

(* Extended Euclid, tracking the Bezout coefficient of [a] as a signed
   value represented by a (negative, magnitude) pair since [t] only holds
   naturals. *)
let modinv a m =
  if is_zero m then None
  else begin
    let a = rem a m in
    if is_zero a then (if equal m one then Some zero else None)
    else begin
      (* new_s = old_s - q * s, on (negative, magnitude) pairs. *)
      let step q (sn, sm) (on, om) =
        let qm = mul q sm in
        if on = sn then
          if compare om qm >= 0 then (on, sub om qm) else (not on, sub qm om)
        else (on, add om qm)
      in
      let rec loop (old_r, r) (old_s, s) =
        if is_zero r then
          if equal old_r one then begin
            let neg, mag = old_s in
            let mag = rem mag m in
            Some (if neg && not (is_zero mag) then sub m mag else mag)
          end
          else None
        else begin
          let q, r2 = divmod old_r r in
          loop (r, r2) (s, step q s old_s)
        end
      in
      loop (a, m) ((false, one), (false, zero))
    end
  end

let random state ~bits =
  if bits < 0 then invalid_arg "Bigint.random";
  if bits = 0 then zero
  else begin
    let limbs = (bits + limb_bits - 1) / limb_bits in
    let r = Array.init limbs (fun _ -> Random.State.int state base) in
    let top_bits = bits - (limbs - 1) * limb_bits in
    r.(limbs - 1) <- r.(limbs - 1) land ((1 lsl top_bits) - 1);
    normalize r
  end

let small_primes = [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67; 71; 73; 79; 83; 89; 97 ]

let is_probable_prime ?(rounds = 24) state n =
  if compare n two < 0 then false
  else if List.exists (fun p -> equal n (of_int p)) small_primes then true
  else if List.exists (fun p -> is_zero (rem n (of_int p))) small_primes then false
  else begin
    (* Write n-1 = d * 2^s with d odd. *)
    let n1 = sub n one in
    let rec split d s = if testbit d 0 then (d, s) else split (shift_right d 1) (s + 1) in
    let d, s = split n1 0 in
    let witness a =
      let x = ref (modpow ~base:a ~exponent:d ~modulus:n) in
      if equal !x one || equal !x n1 then false
      else begin
        let composite = ref true in
        (try
           for _ = 1 to s - 1 do
             x := rem (mul !x !x) n;
             if equal !x n1 then begin
               composite := false;
               raise Exit
             end
           done
         with Exit -> ());
        !composite
      end
    in
    let rec trial k =
      if k = 0 then true
      else begin
        let a = add two (rem (random state ~bits:(bit_length n + 8)) (sub n (of_int 3))) in
        if witness a then false else trial (k - 1)
      end
    in
    trial rounds
  end

let random_prime state ~bits =
  if bits < 2 then invalid_arg "Bigint.random_prime";
  let rec go () =
    let c = random state ~bits in
    (* Force the top and bottom bits so the candidate is odd and full width. *)
    let c = add c (shift_left one (bits - 1)) in
    let c = if testbit c 0 then c else add c one in
    let c = if bit_length c > bits then sub c two else c in
    if is_probable_prime state c then c else go ()
  in
  go ()

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Bigint.of_hex: bad digit"

let of_hex s =
  let s = if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then String.sub s 2 (String.length s - 2) else s in
  if s = "" then invalid_arg "Bigint.of_hex: empty";
  let acc = ref zero in
  let sixteen = of_int 16 in
  String.iter (fun c -> acc := add (mul !acc sixteen) (of_int (hex_digit c))) s;
  !acc

let to_hex a =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 32 in
    let bits = bit_length a in
    let nibbles = (bits + 3) / 4 in
    for i = nibbles - 1 downto 0 do
      let v =
        (if testbit a ((i * 4) + 3) then 8 else 0)
        + (if testbit a ((i * 4) + 2) then 4 else 0)
        + (if testbit a ((i * 4) + 1) then 2 else 0)
        + if testbit a (i * 4) then 1 else 0
      in
      Buffer.add_char buf "0123456789abcdef".[v]
    done;
    Buffer.contents buf
  end

let of_bytes_be s =
  let acc = ref zero in
  String.iter (fun c -> acc := add (shift_left !acc 8) (of_int (Char.code c))) s;
  !acc

let to_bytes_be ~len a =
  if bit_length a > len * 8 then invalid_arg "Bigint.to_bytes_be: too short";
  let b = Bytes.make len '\000' in
  let rec go a i =
    if not (is_zero a) then begin
      let q, r = divmod a (of_int 256) in
      Bytes.set b i (Char.chr (match to_int r with Some v -> v | None -> assert false));
      go q (i - 1)
    end
  in
  go a (len - 1);
  Bytes.to_string b

let pp fmt a = Format.fprintf fmt "0x%s" (to_hex a)
