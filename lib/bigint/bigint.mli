(** Arbitrary-precision natural numbers.

    This module is the arithmetic substrate for the S-NIC attestation
    protocol (Diffie–Hellman exchanges and RSA signatures, Appendix A of the
    paper). Only naturals are provided: every quantity in the protocol
    (hashes, group elements, moduli) is non-negative.

    Numbers are immutable. All functions raising on misuse document it. *)

type t

val zero : t
val one : t
val two : t

(** [of_int n] converts a non-negative [int]. Raises [Invalid_argument]
    on negative input. *)
val of_int : int -> t

(** [to_int t] is [Some n] when [t] fits in an OCaml [int]. *)
val to_int : t -> int option

(** Hex I/O. [of_hex] accepts upper/lower case and an optional ["0x"]
    prefix; raises [Invalid_argument] on other characters. [to_hex] emits
    lower case without prefix; [to_hex zero = "0"]. *)
val of_hex : string -> t
val to_hex : t -> string

(** Big-endian byte-string conversions. [to_bytes_be ~len t] left-pads with
    zero bytes; raises [Invalid_argument] if [t] needs more than [len]
    bytes. *)
val of_bytes_be : string -> t
val to_bytes_be : len:int -> t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool

(** Number of significant bits; [bit_length zero = 0]. *)
val bit_length : t -> int

(** [testbit t i] is bit [i] (0 = least significant). *)
val testbit : t -> int -> bool

val add : t -> t -> t

(** [sub a b] raises [Invalid_argument] when [a < b]. *)
val sub : t -> t -> t

val mul : t -> t -> t

(** [divmod a b] is [(a / b, a mod b)]. Raises [Division_by_zero]. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

val shift_left : t -> int -> t
val shift_right : t -> int -> t

(** [modpow ~base ~exponent ~modulus] computes [base^exponent mod modulus]
    by square-and-multiply. Raises [Division_by_zero] if [modulus] is
    zero. *)
val modpow : base:t -> exponent:t -> modulus:t -> t

val gcd : t -> t -> t

(** [modinv a m] is the inverse of [a] modulo [m], when [gcd a m = 1]. *)
val modinv : t -> t -> t option

(** [random state ~bits] draws a uniform number in [[0, 2^bits)]. *)
val random : Random.State.t -> bits:int -> t

(** Miller–Rabin with [rounds] random bases (default 24). *)
val is_probable_prime : ?rounds:int -> Random.State.t -> t -> bool

(** [random_prime state ~bits] draws an odd probable prime with exactly
    [bits] bits. Raises [Invalid_argument] when [bits < 2]. *)
val random_prime : Random.State.t -> bits:int -> t

val pp : Format.formatter -> t -> unit
