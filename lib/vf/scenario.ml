(* Deterministic saturation driver for VF fairness runs.

   One scenario NIC is a fresh S-NIC machine with every VF slot attached
   and kept backlogged: each VF starts with [prefill] queued descriptors
   and is topped back up after every service, so the two-stage scheduler
   always chooses among all VFs.  We then serve a fixed byte budget of
   [cycles * quantum * total_weight] — i.e. about [cycles] full stage-1
   rotations — and read the weighted goodput shares off the table.
   Everything (packet sizes, flows) comes from one seeded [Trace.Rng],
   so a run is a pure function of its parameters: the CLI prints it
   twice and diffs, and the bench baselines the totals. *)

open Nicsim

type nic_result = {
  nic : int;
  vnics : int;
  scheduled_pkts : int;
  scheduled_bytes : int;
  rounds : int;
  drops : int;
  report : Obs.Fairness.report;
  lat_report : Obs.Fairness.report;
}

type result = {
  nics : nic_result list;
  total_pkts : int;
  total_bytes : int;
  total_drops : int;
  jain_min : float;
  max_rel_err : float;
}

let prefill_depth = 16

(* 64..1023-byte frames: the max frame stays below the stage-1 quantum,
   which keeps the one-packet DRR overshoot small against the credit. *)
let frame_bytes rng = 64 + Trace.Rng.int rng 960

let run_nic ?(sink = Obs.null) ?(config = Table.default_config) ~nic ~cycles ~seed ~vnics () =
  if cycles < 1 then invalid_arg "Vf.Scenario.run_nic: cycles must be >= 1";
  let n = List.length vnics in
  if n < 1 then invalid_arg "Vf.Scenario.run_nic: need at least one vNIC";
  let machine = Machine.create (Machine.default_config ~mode:Machine.Snic) in
  let table = Table.create machine { config with vfs = n } in
  Table.set_sink table sink ~track:Table.track_vf;
  let rng = Trace.Rng.create ~seed:(seed + (nic * 1000003)) in
  List.iteri
    (fun vf (nf, weight) ->
      (match Table.attach table ~vf ~nf ~weight with
      | Ok _ -> ()
      | Error e -> failwith ("Vf.Scenario: attach failed: " ^ e));
      (* Ring the doorbell once as the owner, like a driver kicking its
         freshly initialized queue. *)
      match Table.doorbell table ~principal:(Machine.Nf_code nf) ~vf ~value:(vf + 1) with
      | Ok () -> ()
      | Error f -> failwith ("Vf.Scenario: doorbell failed: " ^ Machine.fault_to_string f))
    vnics;
  let submit vf =
    ignore (Table.tx_submit table ~vf ~flow:(Trace.Rng.int rng 8) ~bytes:(frame_bytes rng) : bool)
  in
  for vf = 0 to n - 1 do
    for _ = 1 to prefill_depth do
      submit vf
    done
  done;
  let total_weight = List.fold_left (fun a (_, w) -> a + w) 0 vnics in
  let budget = cycles * config.quantum * total_weight in
  let served = ref 0 in
  let pkts = ref 0 in
  (* Per-VF service-latency proxy: the gap, counted in fleet-wide
     services, between consecutive services of the same VF.  A weight-w
     VF is picked ~w times as often, so its tail gap should be ~w times
     shorter — exactly what the latency-weighted Jain report scores. *)
  let last_served = Array.make n (-1) in
  let gaps = Array.make n [] in
  (try
     while !served < budget do
       match Table.tx_next table with
       | None -> raise Exit
       | Some (vf, d) ->
         served := !served + d.bytes;
         if last_served.(vf) >= 0 then gaps.(vf) <- float_of_int (!pkts - last_served.(vf)) :: gaps.(vf);
         last_served.(vf) <- !pkts;
         incr pkts;
         submit vf
     done
   with Exit -> ());
  let drops =
    let acc = ref 0 in
    for vf = 0 to n - 1 do
      let s = Table.stats table ~vf in
      acc := !acc + s.Table.tx_drops + s.Table.rx_drops
    done;
    !acc
  in
  let lat_report =
    Obs.Fairness.latency_weighted_report
      (List.concat
         (List.mapi
            (fun vf (_, weight) ->
              match Obs.Metrics.quantile_of_samples gaps.(vf) 0.99 with
              | Some p99 -> [ (vf, p99, float_of_int weight) ]
              | None -> [])
            vnics))
  in
  {
    nic;
    vnics = n;
    scheduled_pkts = !pkts;
    scheduled_bytes = !served;
    rounds = Table.rounds table;
    drops;
    report = Table.fairness table;
    lat_report;
  }

(* Weights cycle 1,2,4,8 down the VF ids so every NIC hosts a mix. *)
let weight_cycle = [| 1; 2; 4; 8 |]

let default_vnics ~nic ~vfs =
  List.init vfs (fun vf -> ((nic * 10000) + vf + 1, weight_cycle.(vf mod 4)))

let run ?(sink = Obs.null) ?(config = Table.default_config) ~nics ~vfs ~cycles ~seed () =
  if nics < 1 then invalid_arg "Vf.Scenario.run: nics must be >= 1";
  if vfs < 1 then invalid_arg "Vf.Scenario.run: vfs must be >= 1";
  let results =
    List.init nics (fun nic ->
        run_nic ~sink ~config ~nic ~cycles ~seed ~vnics:(default_vnics ~nic ~vfs) ())
  in
  let total_pkts = List.fold_left (fun a r -> a + r.scheduled_pkts) 0 results in
  let total_bytes = List.fold_left (fun a r -> a + r.scheduled_bytes) 0 results in
  let total_drops = List.fold_left (fun a r -> a + r.drops) 0 results in
  let jain_min =
    List.fold_left (fun a r -> Float.min a r.report.Obs.Fairness.index) infinity results
  in
  let max_rel_err =
    List.fold_left (fun a r -> Float.max a r.report.Obs.Fairness.max_rel_err) 0. results
  in
  { nics = results; total_pkts; total_bytes; total_drops; jain_min; max_rel_err }

let nic_summary r =
  Printf.sprintf
    "nic %3d: vnics=%d pkts=%d bytes=%d rounds=%d drops=%d jain=%.4f max-err=%.2f%% lat-jain=%.4f"
    r.nic r.vnics r.scheduled_pkts r.scheduled_bytes r.rounds r.drops r.report.Obs.Fairness.index
    (100. *. r.report.Obs.Fairness.max_rel_err)
    r.lat_report.Obs.Fairness.index

let summary r =
  let b = Buffer.create 256 in
  List.iter
    (fun nr ->
      Buffer.add_string b (nic_summary nr);
      Buffer.add_char b '\n')
    r.nics;
  Buffer.add_string b
    (Printf.sprintf "total: pkts=%d bytes=%d drops=%d jain-min=%.4f max-err=%.2f%%\n" r.total_pkts
       r.total_bytes r.total_drops r.jain_min (100. *. r.max_rel_err));
  Buffer.contents b
