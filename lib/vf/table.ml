(* SR-IOV-style virtual functions over one machine.

   OS4C virtualizes Corundum into 252 VFs behind a two-stage weighted
   transmit scheduler; this is that shape on the simulated NIC.  Each VF
   is (tenant NF, weight, TX/RX descriptor queues, one page of MMIO
   doorbell/ring window).  The window page goes through [Alloc], so on
   S-NIC it is single-owner tenant RAM and the machine's own access
   checks police every doorbell ring and ring read — VF multiplexing
   adds no new policy code, and therefore no new ways to leak.

   Strict per-VF accounting: the TX quota is charged per VF and the
   stage-1 scheduler keeps one backlog per VF, so one tenant's burst can
   fill only its own descriptors — never another VF's. *)

open Nicsim

type config = {
  vfs : int; (* VF slots in the table *)
  quantum : int; (* stage-1 byte quantum per weight unit *)
  inner_quantum : int; (* stage-2 per-flow DRR quantum *)
  tx_quota : int; (* max queued TX descriptors per VF *)
  rx_quota : int; (* max queued RX descriptors per VF *)
}

let default_config = { vfs = 256; quantum = 1024; inner_quantum = 1024; tx_quota = 128; rx_quota = 64 }

type desc = { flow : int; bytes : int }

type slot = {
  mutable nf : int;
  mutable weight : int;
  mutable base : int;
  mutable live : bool;
  mutable inflight : int; (* TX descriptors currently queued *)
  mutable tx_bytes : int;
  mutable tx_pkts : int;
  mutable tx_drops : int;
  mutable doorbells : int;
  mutable last_doorbell : int;
  rx : desc Queue.t;
  mutable rx_drops : int;
}

type t = {
  machine : Machine.t;
  config : config;
  slots : slot array;
  hier : desc Sched.Hier.t;
  mutable attached : int;
  mutable scheduled : int;
  mutable sink : Obs.sink;
  mutable track : int;
}

(* Machine track map ends at pktio = 910; the VF layer is the next unit. *)
let track_vf = 920

let create machine config =
  if config.vfs < 1 then invalid_arg "Vf.Table.create: vfs must be >= 1";
  if config.tx_quota < 1 || config.rx_quota < 1 then
    invalid_arg "Vf.Table.create: quotas must be >= 1";
  {
    machine;
    config;
    slots =
      Array.init config.vfs (fun _ ->
          {
            nf = -1;
            weight = 1;
            base = 0;
            live = false;
            inflight = 0;
            tx_bytes = 0;
            tx_pkts = 0;
            tx_drops = 0;
            doorbells = 0;
            last_doorbell = 0;
            rx = Queue.create ();
            rx_drops = 0;
          });
    hier = Sched.Hier.create ~inner:(Sched.Drr { quantum = config.inner_quantum }) ~quantum:config.quantum ();
    attached = 0;
    scheduled = 0;
    sink = Obs.null;
    track = track_vf;
  }

let config t = t.config
let machine t = t.machine

let set_sink t sink ~track =
  t.sink <- sink;
  t.track <- track;
  Sched.Hier.set_sink t.hier sink ~track

let check_vf t vf name =
  if vf < 0 || vf >= t.config.vfs then
    invalid_arg (Printf.sprintf "Vf.Table.%s: vf %d out of range (table has %d)" name vf t.config.vfs)

let attached t ~vf =
  check_vf t vf "attached";
  t.slots.(vf).live

let attached_count t = t.attached

let owner_nf t ~vf =
  check_vf t vf "owner_nf";
  let s = t.slots.(vf) in
  if s.live then Some s.nf else None

let weight t ~vf =
  check_vf t vf "weight";
  let s = t.slots.(vf) in
  if s.live then Some s.weight else None

let window_base t ~vf =
  check_vf t vf "window_base";
  let s = t.slots.(vf) in
  if s.live then Some s.base else None

(* The doorbell register (u64) sits at window offset 0; the rest of the
   page is the descriptor-ring window, filled with a recognizable per-VF
   pattern so the oracle can predict every ring read byte-for-byte. *)
let window_pattern ~vf =
  String.init Physmem.page_size (fun i ->
      if i < 8 then '\000' else Char.chr (0x41 + ((i + (vf * 11)) mod 26)))

let attach t ~vf ~nf ~weight =
  check_vf t vf "attach";
  if weight < 1 then invalid_arg "Vf.Table.attach: weight must be >= 1";
  let s = t.slots.(vf) in
  if s.live then Error (Printf.sprintf "vf %d already attached" vf)
  else begin
    (* On S-NIC the window page is the tenant's own single-owner RAM; on
       commodity NICs it is NIC-OS BAR space (BlueField additionally
       marks it secure-world, like its accelerator MMIO pages). *)
    let owner =
      match Machine.mode t.machine with Machine.Snic -> Physmem.Nf nf | _ -> Physmem.Nic_os
    in
    match Alloc.alloc (Machine.alloc t.machine) ~align:Physmem.page_size ~owner Physmem.page_size with
    | None -> Error "out of NIC memory for the VF window"
    | Some base ->
      Physmem.write_bytes (Machine.mem t.machine) ~pos:base (window_pattern ~vf);
      if Machine.mode t.machine = Machine.Bluefield then
        Machine.set_secure t.machine ~pos:base ~len:Physmem.page_size true;
      s.nf <- nf;
      s.weight <- weight;
      s.base <- base;
      s.live <- true;
      s.inflight <- 0;
      s.tx_bytes <- 0;
      s.tx_pkts <- 0;
      s.tx_drops <- 0;
      s.doorbells <- 0;
      s.last_doorbell <- 0;
      Queue.clear s.rx;
      s.rx_drops <- 0;
      Sched.Hier.set_class t.hier ~cls:vf ~weight;
      t.attached <- t.attached + 1;
      Ok base
  end

let detach t ~vf =
  check_vf t vf "detach";
  let s = t.slots.(vf) in
  if s.live then begin
    (* Queued descriptors die with the VF — they were charged to this
       VF's quota alone, so nothing else needs rebalancing. *)
    ignore (Sched.Hier.remove_class t.hier ~cls:vf : desc list);
    s.inflight <- 0;
    Queue.clear s.rx;
    (match Machine.mode t.machine with
    | Machine.Snic ->
      (* Single-owner RAM: scrub before the page returns to the pool. *)
      Physmem.zero_range (Machine.mem t.machine) ~pos:s.base ~len:Physmem.page_size
    | Machine.Bluefield -> Machine.set_secure t.machine ~pos:s.base ~len:Physmem.page_size false
    | _ -> ());
    Alloc.free (Machine.alloc t.machine) s.base;
    s.live <- false;
    s.nf <- -1;
    t.attached <- t.attached - 1
  end

let doorbell t ~principal ~vf ~value =
  check_vf t vf "doorbell";
  let s = t.slots.(vf) in
  if not s.live then invalid_arg "Vf.Table.doorbell: vf not attached";
  match Machine.store_u64 t.machine principal (Machine.Phys s.base) value with
  | Ok () ->
    s.doorbells <- s.doorbells + 1;
    s.last_doorbell <- value;
    Obs.count t.sink Obs.Vf_doorbell;
    Ok ()
  | Error f -> Error f

let queue_read t ~principal ~vf ~len =
  check_vf t vf "queue_read";
  let s = t.slots.(vf) in
  if not s.live then invalid_arg "Vf.Table.queue_read: vf not attached";
  let len = max 1 (min len (Physmem.page_size - 8)) in
  Machine.load_bytes t.machine principal (Machine.Phys (s.base + 8)) ~len

let tx_submit t ~vf ~flow ~bytes =
  check_vf t vf "tx_submit";
  let s = t.slots.(vf) in
  if not s.live then false
  else if s.inflight >= t.config.tx_quota then begin
    s.tx_drops <- s.tx_drops + 1;
    Obs.count t.sink Obs.Vf_drop;
    false
  end
  else begin
    Sched.Hier.enqueue t.hier ~cls:vf { Sched.flow; bytes; level = 0; weight = 1 } { flow; bytes };
    s.inflight <- s.inflight + 1;
    true
  end

let tx_next t =
  match Sched.Hier.dequeue t.hier with
  | None -> None
  | Some (vf, d) ->
    let s = t.slots.(vf) in
    s.inflight <- s.inflight - 1;
    s.tx_bytes <- s.tx_bytes + d.bytes;
    s.tx_pkts <- s.tx_pkts + 1;
    t.scheduled <- t.scheduled + 1;
    Obs.count t.sink Obs.Vf_tx;
    Some (vf, d)

let tx_backlog t ~vf =
  check_vf t vf "tx_backlog";
  t.slots.(vf).inflight

let rx_push t ~vf d =
  check_vf t vf "rx_push";
  let s = t.slots.(vf) in
  if not s.live then false
  else if Queue.length s.rx >= t.config.rx_quota then begin
    s.rx_drops <- s.rx_drops + 1;
    Obs.count t.sink Obs.Vf_drop;
    false
  end
  else begin
    Queue.push d s.rx;
    Obs.count t.sink Obs.Vf_rx;
    true
  end

let rx_pop t ~vf =
  check_vf t vf "rx_pop";
  let s = t.slots.(vf) in
  if s.live && not (Queue.is_empty s.rx) then Some (Queue.pop s.rx) else None

let rx_depth t ~vf =
  check_vf t vf "rx_depth";
  Queue.length t.slots.(vf).rx

type stats = {
  tx_bytes : int;
  tx_pkts : int;
  tx_drops : int;
  rx_drops : int;
  doorbells : int;
  last_doorbell : int;
}

let stats t ~vf =
  check_vf t vf "stats";
  let s = t.slots.(vf) in
  {
    tx_bytes = s.tx_bytes;
    tx_pkts = s.tx_pkts;
    tx_drops = s.tx_drops;
    rx_drops = s.rx_drops;
    doorbells = s.doorbells;
    last_doorbell = s.last_doorbell;
  }

let scheduled t = t.scheduled
let rounds t = Sched.Hier.rounds t.hier

let goodput t =
  let acc = ref [] in
  for vf = t.config.vfs - 1 downto 0 do
    let s = t.slots.(vf) in
    if s.live then acc := (vf, s.weight, s.tx_bytes) :: !acc
  done;
  !acc

let fairness t =
  Obs.Fairness.weighted_report
    (List.map (fun (vf, w, b) -> (vf, float_of_int b, float_of_int w)) (goodput t))
