(** Deterministic saturation driver for VF fairness runs.

    Attaches every VF of a fresh S-NIC machine, keeps all of them
    backlogged, serves roughly [cycles] full stage-1 rotations, and
    reports per-tenant goodput shares.  A run is a pure function of its
    parameters and seed — the CLI diffs two runs for the determinism
    gate, the bench baselines the totals. *)

type nic_result = {
  nic : int;
  vnics : int;
  scheduled_pkts : int;
  scheduled_bytes : int;
  rounds : int;  (** stage-1 quantum refills *)
  drops : int;  (** TX + RX quota drops (0 in a healthy run) *)
  report : Obs.Fairness.report;
  lat_report : Obs.Fairness.report;
      (** {!Obs.Fairness.latency_weighted_report} over each VF's p99
          inter-service gap — the same lower-is-better fairness scoring
          the QoS noisy-neighbor report uses. *)
}

type result = {
  nics : nic_result list;
  total_pkts : int;
  total_bytes : int;
  total_drops : int;
  jain_min : float;  (** worst per-NIC weighted Jain index *)
  max_rel_err : float;  (** worst per-NIC share error vs weights *)
}

val prefill_depth : int
(** Descriptors kept in flight per VF (well under the TX quota). *)

val run_nic :
  ?sink:Obs.sink ->
  ?config:Table.config ->
  nic:int ->
  cycles:int ->
  seed:int ->
  vnics:(int * int) list ->
  unit ->
  nic_result
(** Drive one NIC whose VF slot [i] hosts the [i]-th [(nf, weight)] of
    [vnics].  Raises [Invalid_argument] on [cycles < 1] or an empty
    vNIC list. *)

val default_vnics : nic:int -> vfs:int -> (int * int) list
(** [vfs] tenants with weights cycling 1, 2, 4, 8 down the VF ids. *)

val run :
  ?sink:Obs.sink ->
  ?config:Table.config ->
  nics:int ->
  vfs:int ->
  cycles:int ->
  seed:int ->
  unit ->
  result
(** [nics] independent NICs, each fully populated via {!default_vnics}. *)

val nic_summary : nic_result -> string
(** One deterministic line (no timing) for a NIC. *)

val summary : result -> string
(** Per-NIC lines plus a totals footer; byte-identical across runs with
    the same parameters. *)
