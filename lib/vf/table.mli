(** SR-IOV-style virtual functions over one machine.

    A VF table multiplexes hundreds of tenant vNICs over one
    [Nicsim.Machine]: VF id -> (tenant NF, weight, TX/RX descriptor
    queues, one page of MMIO doorbell/ring window), with transmit order
    decided by the two-stage [Sched.Hier] scheduler — stage 1 weighted
    round robin across VFs, stage 2 per-flow DRR inside the chosen VF.

    Isolation: the window page is allocated through [Alloc] (on S-NIC as
    the tenant's single-owner RAM, on commodity NICs as NIC-OS BAR
    space), so the machine's own access checks police every doorbell and
    ring read.  TX/RX quotas are charged strictly per VF: one tenant's
    backlog can never consume another VF's descriptors. *)

type config = {
  vfs : int;  (** VF slots in the table *)
  quantum : int;  (** stage-1 byte quantum per weight unit *)
  inner_quantum : int;  (** stage-2 per-flow DRR quantum *)
  tx_quota : int;  (** max queued TX descriptors per VF *)
  rx_quota : int;  (** max queued RX descriptors per VF *)
}

val default_config : config
(** 256 VFs, 1 KiB quanta, 128/64 TX/RX descriptors per VF. *)

type desc = { flow : int; bytes : int }
(** A queued descriptor: flow key and frame bytes. *)

type t

val create : Nicsim.Machine.t -> config -> t
(** Raises [Invalid_argument] on a non-positive VF count or quota. *)

val config : t -> config
val machine : t -> Nicsim.Machine.t

val track_vf : int
(** Trace track id for VF scheduler events (after pktio's 910). *)

val set_sink : t -> Obs.sink -> track:int -> unit
(** Route per-VF counters and stage-1 quantum instants to [sink]. *)

val attach : t -> vf:int -> nf:int -> weight:int -> (int, string) result
(** [attach t ~vf ~nf ~weight] brings a VF up for tenant [nf]: allocates
    its page-aligned window, writes the deterministic ring pattern, and
    registers the VF with the stage-1 scheduler at [weight].  Returns
    the window base.  Errors if the slot is already attached or NIC
    memory is exhausted; raises on an out-of-range [vf] or [weight < 1]. *)

val detach : t -> vf:int -> unit
(** Tear the VF down: drop its queued descriptors, scrub the window (on
    S-NIC; BlueField clears the secure-world mark), free the page, and
    remove the VF from the scheduler.  Idempotent on detached slots. *)

val attached : t -> vf:int -> bool
val attached_count : t -> int
val owner_nf : t -> vf:int -> int option
val weight : t -> vf:int -> int option
val window_base : t -> vf:int -> int option

val window_pattern : vf:int -> string
(** The full window-page image written at attach: 8 zero bytes of
    doorbell register, then a per-VF ring pattern.  Pure, so a reference
    model can predict ring reads byte-for-byte. *)

val doorbell :
  t -> principal:Nicsim.Machine.principal -> vf:int -> value:int -> (unit, Nicsim.Machine.fault) result
(** Ring the VF's doorbell: a u64 store at window offset 0, issued as
    [principal] and subject to the machine's access policy.  Raises if
    the VF is not attached. *)

val queue_read :
  t -> principal:Nicsim.Machine.principal -> vf:int -> len:int -> (string, Nicsim.Machine.fault) result
(** Read [len] bytes of the VF's descriptor-ring window (offset 8 on;
    [len] clamps to the window).  The cross-VF probe the oracle drives. *)

val tx_submit : t -> vf:int -> flow:int -> bytes:int -> bool
(** Queue one TX descriptor.  [false] (and a [Vf_drop] count) when the
    VF is detached or its own quota is full — other VFs' backlogs never
    affect admission. *)

val tx_next : t -> (int * desc) option
(** Next descriptor per the two-stage schedule, with its VF id. *)

val tx_backlog : t -> vf:int -> int

val rx_push : t -> vf:int -> desc -> bool
(** Deliver one RX descriptor to the VF's bounded RX queue. *)

val rx_pop : t -> vf:int -> desc option
val rx_depth : t -> vf:int -> int

type stats = {
  tx_bytes : int;
  tx_pkts : int;
  tx_drops : int;
  rx_drops : int;
  doorbells : int;
  last_doorbell : int;
}

val stats : t -> vf:int -> stats
(** Per-VF counters since the last attach. *)

val scheduled : t -> int
(** Total descriptors scheduled out of the table. *)

val rounds : t -> int
(** Stage-1 quantum refills so far. *)

val goodput : t -> (int * int * int) list
(** [(vf, weight, tx_bytes)] for every attached VF, ascending by id. *)

val fairness : t -> Obs.Fairness.report
(** Weighted goodput-share report over the attached VFs. *)
