(* Root of the virtual-function library.

   [Vf.Table] is the SR-IOV-style VF table over one [Nicsim.Machine]:
   hundreds of tenant vNICs, each with its own doorbell/ring window page,
   strict per-VF descriptor quotas, and a two-stage weighted transmit
   scheduler ([Sched.Hier]).  [Vf.Scenario] is the deterministic traffic
   driver the CLI, bench, and tests share. *)

module Table = Table
module Scenario = Scenario
