(** The paper's motivating comparison (§1, §6): running a network
    function inside a host SGX enclave (SafeBricks-style) versus on an
    S-NIC.

    The enclave protects the function's state from the host OS, but
    enclave memory cannot be the target of DMA — every packet must stage
    through ordinary host RAM, where a malicious kernel can read it
    (confidentiality) and modify it (integrity) before the enclave pulls
    it in. On an S-NIC the packet never traverses attacker-accessible
    memory in the clear. *)

type outcome = {
  deployment : string;
  kernel_saw_plaintext : bool; (* could the host kernel read the packet? *)
  kernel_tampered_input : bool; (* did kernel tampering reach the NF's input? *)
  dma_into_protected_memory : bool; (* can the NIC DMA straight into the TEE? *)
}

val pp_outcome : Format.formatter -> outcome -> unit

(** A firewall processing one sensitive packet inside a host enclave. *)
val safebricks_deployment : unit -> outcome

(** The same function launched on an S-NIC. *)
val snic_deployment : unit -> outcome
