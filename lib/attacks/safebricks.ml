open Nicsim

type outcome = {
  deployment : string;
  kernel_saw_plaintext : bool;
  kernel_tampered_input : bool;
  dma_into_protected_memory : bool;
}

let pp_outcome fmt o =
  Format.fprintf fmt "%-22s kernel reads packets: %-5b kernel tampers input: %-5b DMA into TEE: %b" o.deployment
    o.kernel_saw_plaintext o.kernel_tampered_input o.dma_into_protected_memory

let secret = "PATIENT RECORD #4411: diagnosis..."

let sensitive_packet () =
  Net.Packet.make
    ~src_ip:(Net.Ipv4_addr.of_string "10.0.0.1")
    ~dst_ip:(Net.Ipv4_addr.of_string "10.0.0.2")
    ~proto:Net.Packet.Udp ~src_port:443 ~dst_port:443 secret

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let safebricks_deployment () =
  let host = Host.Enclave.make_host ~mem_bytes:(16 * 1024 * 1024) ~epc_bytes:(4 * 1024 * 1024) in
  let enclave = Host.Enclave.create host ~name:"safebricks-fw" in
  (match Host.Enclave.add_page enclave "firewall code+rules v1" with Ok () -> () | Error e -> failwith e);
  (match Host.Enclave.init enclave with Ok _ -> () | Error e -> failwith e);
  (* 1. The NIC tries to DMA straight into the enclave: hardware refuses
     (EPC pages are not valid DMA targets). *)
  let dma_into_protected_memory = Host.Enclave.dma_allowed host ~pos:host.Host.Enclave.epc_base ~len:2048 in
  (* 2. So the packet lands in ordinary host RAM instead. *)
  let staging = 0x4000 in
  let frame = Net.Packet.serialize (sensitive_packet ()) in
  assert (Host.Enclave.dma_allowed host ~pos:staging ~len:(Bytes.length frame));
  Physmem.write_bytes host.Host.Enclave.mem ~pos:staging (Bytes.to_string frame);
  (* 3. The malicious kernel looks at — and edits — the staging buffer
     before the enclave gets to it. *)
  let snooped = Host.Enclave.os_read host ~pos:staging ~len:(Bytes.length frame) in
  let kernel_saw_plaintext = contains snooped secret in
  Host.Enclave.os_write host ~pos:(staging + Bytes.length frame - 10) "TAMPERED!!";
  (* 4. The enclave pulls the packet in and processes it: the tampering
     reached its input. *)
  let kernel_tampered_input =
    match
      Host.Enclave.enter enclave (fun ~read:_ ~write ->
          let pulled = Host.Enclave.os_read host ~pos:staging ~len:(Bytes.length frame) in
          write ~off:1024 (String.sub pulled 0 (min 2048 (String.length pulled)));
          contains pulled "TAMPERED!!")
    with
    | Ok tampered -> tampered
    | Error e -> failwith e
  in
  { deployment = "SafeBricks (host SGX)"; kernel_saw_plaintext; kernel_tampered_input; dma_into_protected_memory }

let snic_deployment () =
  let api = Snic.Api.boot () in
  let vnic =
    match
      Snic.Api.nf_create api
        { Snic.Instructions.default_config with image = "fw-on-nic"; rules = [ Pktio.match_any ] }
    with
    | Ok v -> v
    | Error e -> failwith e
  in
  let m = Snic.Api.machine api in
  (match Snic.Api.inject_packet api (sensitive_packet ()) with Ok _ -> () | Error e -> failwith e);
  (* The packet sits in the NF's on-NIC buffer. The "kernel" here is the
     NIC OS plus anything on the host: neither can reach it. *)
  let buffer, len =
    match Pktio.rx_pop (Machine.pktio m) ~nf:(Snic.Vnic.id vnic) with
    | Some d -> d
    | None -> failwith "packet not delivered"
  in
  let kernel_saw_plaintext =
    match Machine.load_bytes m Machine.Os (Machine.Phys buffer) ~len with
    | Ok bytes -> contains bytes secret
    | Error _ -> false
  in
  let kernel_tampered_input =
    match Machine.store_u8 m Machine.Os (Machine.Phys (buffer + 50)) 0x58 with Ok () -> true | Error _ -> false
  in
  (* Host-initiated DMA into the function's RAM without a sanctioned
     window: the locked (empty) bank TLBs refuse. *)
  let h = Snic.Vnic.handle vnic in
  let dma_into_protected_memory =
    match
      Dma.transfer ~checked:true (Machine.dma m)
        ~bank:(List.hd h.Snic.Instructions.cores)
        ~direction:Dma.To_nic ~nic_addr:h.Snic.Instructions.mem_base ~host_addr:0 ~len:64
    with
    | Ok () -> true
    | Error _ -> false
  in
  { deployment = "S-NIC"; kernel_saw_plaintext; kernel_tampered_input; dma_into_protected_memory }
