(** Shared two-tenant setup for the §3.3 attack reproductions: a victim
    NF (id 0) and a malicious NF (id 1), installed on a machine in any
    mode using the commodity management path (buffers from the shared
    allocator, a bound core each, a TLB window over their own memory). *)

type t = {
  machine : Nicsim.Machine.t;
  victim_mem : int; (* physical base of the victim's private region *)
  victim_mem_len : int;
  attacker_mem : int;
  attacker_mem_len : int;
  victim_cluster : int; (* the victim's DPI accelerator cluster *)
  attacker_cluster : int;
}

val victim_id : int
val attacker_id : int

(** [setup mode] builds the machine and both tenants; the victim gets a
    packet pipeline with a catch-all switching rule. *)
val setup : Nicsim.Machine.mode -> t

(** Accessors for code running *as* one of the tenants. *)
val as_victim : t -> Nicsim.Machine.principal

val as_attacker : t -> Nicsim.Machine.principal

(** [deliver_to_victim t pkt] pushes a packet through ingress into the
    victim's RX ring. *)
val deliver_to_victim : t -> Net.Packet.t -> (unit, string) result
