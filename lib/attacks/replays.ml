type replay = {
  name : string;
  paper_ref : string;
  ops : Oracle.Op.t list;
  expected : Oracle.Refmodel.cls;
}

let launch ?(accel = false) ?(rules = false) slot = Oracle.Op.Launch { slot; mem_kb = 4; accel; rules }

(* Victim in slot 0, attacker in slot 1 — the same cast as Scenario. *)
let all =
  [
    {
      name = "packet-corruption";
      paper_ref = "§3.3 attack 1";
      ops =
        [
          launch 0 ~rules:true;
          launch 1;
          Oracle.Op.Write { actor = Slot 1; target = 0; space = Phys; off = 0; len = 16; byte = 0xAA };
        ];
      expected = Oracle.Refmodel.Cross_tenant_write;
    };
    {
      name = "ruleset-stealing";
      paper_ref = "§3.3 attack 2";
      ops =
        [ launch 0; launch 1; Oracle.Op.Read { actor = Slot 1; target = 0; space = Phys; off = 0; len = 64 } ];
      expected = Oracle.Refmodel.Cross_tenant_read;
    };
    {
      name = "accel-hijack";
      paper_ref = "§4.3 accelerator hijacking";
      ops = [ launch 0 ~accel:true; launch 1; Oracle.Op.Mmio_write { actor = 1; target = 0; reg = Graph; value = 0xBAD } ];
      expected = Oracle.Refmodel.Accel_hijack;
    };
    {
      name = "os-snooping";
      paper_ref = "§3.2 NIC-OS trust";
      ops = [ launch 0; Oracle.Op.Read { actor = Os; target = 0; space = Phys; off = 0; len = 64 } ];
      expected = Oracle.Refmodel.Os_read_nf;
    };
    {
      name = "dma-exfiltration";
      paper_ref = "§4.4 DMA bank windows";
      ops = [ launch 0; launch 1; Oracle.Op.Dma { actor = 1; target = 0; dir = To_host; off = 0; len = 64 } ];
      expected = Oracle.Refmodel.Cross_tenant_read;
    };
    {
      name = "scrub-residue";
      paper_ref = "§4.2 teardown scrub";
      ops = [ launch 0; Oracle.Op.Teardown { slot = 0 } ];
      expected = Oracle.Refmodel.Scrub_residue;
    };
    {
      name = "stale-translation";
      paper_ref = "§4.2 TLB locking";
      ops = [ launch 0; Oracle.Op.Teardown { slot = 0 } ];
      expected = Oracle.Refmodel.Stale_translation;
    };
  ]

let find name = List.find_opt (fun r -> String.equal r.name name) all

let reproduces mode r =
  let report = Oracle.Campaign.replay ~mode r.ops in
  List.exists (fun (v : Oracle.Refmodel.violation) -> v.cls = r.expected) report.Oracle.Campaign.violations

let trace mode r = Oracle.Campaign.trace_to_string ~mode ~slots:Oracle.Campaign.default_slots r.ops
