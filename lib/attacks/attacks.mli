(** Reproductions of the three concrete attacks of §3.3.

    Each attack is written once, purely in terms of the malicious NF's
    machine-checked memory accesses, and run against every NIC mode; the
    mode decides whether it succeeds. The paper demonstrated packet
    corruption and DPI-ruleset stealing on a LiquidIO (SE-S mode) and the
    IO-bus DoS on an Agilio; S-NIC is designed to stop all three. *)

module Scenario = Scenario
module Safebricks = Safebricks
module Replays = Replays

type outcome = {
  mode : Nicsim.Machine.mode;
  succeeded : bool;
  detail : string; (* what the attacker achieved, or why it faulted *)
}

val pp_outcome : Format.formatter -> outcome -> unit

(** {2 Attack 1 — packet corruption}

    A MazuNAT-style victim receives a packet; the malicious NF scans the
    buffer allocator's DRAM metadata to locate the victim's packet buffer
    and flips header bytes in place. Success = the victim's packet no
    longer passes checksum verification when it processes it. *)
val packet_corruption : Nicsim.Machine.mode -> outcome

(** {2 Attack 2 — DPI ruleset stealing}

    The victim stores its DPI patterns (length-prefixed) in its private
    region; the malicious NF locates the region via allocator metadata
    and exfiltrates the patterns. Success = at least half the victim's
    patterns recovered verbatim. *)
val ruleset_stealing : Nicsim.Machine.mode -> outcome

(** {2 Attack 3 — IO bus denial of service}

    The attacker saturates the internal bus with long atomic operations
    (the Agilio [test_subsat] loop). We measure the victim's packet rate
    with and without the attack under both arbitration policies. *)
type dos_result = {
  policy : Nicsim.Bus.policy;
  alone_pps : float;
  under_attack_pps : float;
  retained : float; (* under_attack / alone *)
}

val bus_dos : Nicsim.Bus.policy -> dos_result

(** {2 Attack 4 — accelerator hijacking (§4.3)}

    The victim registers its DPI rule graph by writing the graph pointer
    into its cluster's memory-mapped configuration registers. On
    commodity NICs those registers are writable by anyone, so the
    attacker re-points the victim's cluster at an attacker-controlled
    graph. S-NIC maps each cluster's registers privately into the owning
    function's address space. *)
val accel_hijack : Nicsim.Machine.mode -> outcome

(** Run attacks 1 and 2 across all five modes (the table the §3.3
    narrative implies). *)
val matrix : unit -> (string * outcome * outcome) list

(** {2 Timing side channels}

    Beyond overt corruption, §3.2/§4.5 describe *covert* channels through
    shared hardware. Two are reproduced:

    - a bus covert channel: a sender NF modulates its bus usage to encode
      bits; a colocated receiver decodes them by timing its own memory
      operations. Temporal partitioning flattens the receiver's timings,
      collapsing accuracy to a coin flip.
    - accelerator contention (the Agilio crypto-unit observation): on a
      shared accelerator, a probe request's latency reveals whether
      another tenant is using it; a dedicated S-NIC cluster reveals
      nothing. *)

type covert_result = {
  policy : Nicsim.Bus.policy;
  bits : int;
  decoded : int; (* correctly decoded *)
  accuracy : float;
}

(** [bus_covert_channel policy] sends a pseudo-random 64-bit message. *)
val bus_covert_channel : Nicsim.Bus.policy -> covert_result

type accel_probe_result = {
  shared : bool;
  idle_latency : int; (* probe latency with the victim idle *)
  busy_latency : int; (* probe latency with the victim hammering *)
  distinguishable : bool;
}

(** [accel_contention ~shared] probes a DPI engine. *)
val accel_contention : shared:bool -> accel_probe_result
