open Nicsim

(* Re-exported so library users reach the shared two-tenant setup as
   [Attacks.Scenario]. *)
module Scenario = Scenario
module Safebricks = Safebricks
module Replays = Replays

type outcome = { mode : Machine.mode; succeeded : bool; detail : string }

let pp_outcome fmt o =
  Format.fprintf fmt "[%s] %s: %s" (Machine.mode_name o.mode)
    (if o.succeeded then "ATTACK SUCCEEDED" else "blocked")
    o.detail

let ( let* ) = Result.bind

(* Walk the allocator's DRAM metadata *as the attacker*, returning the
   victim's live buffers. Every byte goes through the machine's access
   checks, so on S-NIC the very first read faults. *)
let scan_metadata (s : Scenario.t) =
  let m = s.machine in
  let atk = Scenario.as_attacker s in
  let base = Alloc.metadata_base (Machine.alloc m) in
  let* magic = Machine.load_bytes m atk (Machine.Phys base) ~len:8 in
  let* () =
    if String.equal magic Alloc.magic then Ok ()
    else Error (Machine.Denied { principal = atk; addr = base; reason = "allocator magic not found" })
  in
  let* count = Machine.load_u64 m atk (Machine.Phys (base + 8)) in
  let victim_code = Scenario.victim_id + 1 in
  let rec walk i acc =
    if i >= count then Ok (List.rev acc)
    else begin
      let d = base + 16 + (i * Alloc.desc_size) in
      let* owner = Machine.load_u64 m atk (Machine.Phys d) in
      let* addr = Machine.load_u64 m atk (Machine.Phys (d + 8)) in
      let* len = Machine.load_u64 m atk (Machine.Phys (d + 16)) in
      let* in_use = Machine.load_u64 m atk (Machine.Phys (d + 24)) in
      walk (i + 1) (if owner = victim_code && in_use = 1 then (addr, len) :: acc else acc)
    end
  in
  walk 0 []

(* The victim's own packet read. In SE-UM without xkphys a function
   cannot touch physical addresses itself and asks the kernel to copy the
   packet (the syscall configuration of §3.2); everywhere else it reads
   its buffer directly. *)
let victim_read_frame (s : Scenario.t) ~addr ~len =
  let m = s.machine in
  match Machine.load_bytes m (Scenario.as_victim s) (Machine.Phys addr) ~len with
  | Ok frame -> frame
  | Error _ -> begin
    match Machine.load_bytes m Machine.Os (Machine.Phys addr) ~len with
    | Ok frame -> frame
    | Error f -> failwith ("victim cannot read its own packet: " ^ Machine.fault_to_string f)
  end

let test_packet () =
  Net.Packet.make
    ~src_ip:(Net.Ipv4_addr.of_string "10.1.1.1")
    ~dst_ip:(Net.Ipv4_addr.of_string "198.51.100.7")
    ~proto:Net.Packet.Udp ~src_port:3333 ~dst_port:8080 "sensitive payload"

let packet_corruption mode =
  let s = Scenario.setup mode in
  let m = s.machine in
  (match Scenario.deliver_to_victim s (test_packet ()) with
  | Ok () -> ()
  | Error e -> failwith ("setup: " ^ e));
  (* Attacker: locate the victim's buffers and flip bytes inside the IP
     header region of each. Individual faults are tolerated — a real
     attacker just skips memory it cannot touch (e.g. BlueField's
     secure-world regions) and keeps going. *)
  let attack =
    let* buffers = scan_metadata s in
    let corrupted = ref 0 and last_fault = ref None in
    List.iter
      (fun (addr, _len) ->
        let res =
          let* v = Machine.load_u8 m (Scenario.as_attacker s) (Machine.Phys (addr + 30)) in
          let* () = Machine.store_u8 m (Scenario.as_attacker s) (Machine.Phys (addr + 30)) (v lxor 0xFF) in
          Ok ()
        in
        match res with Ok () -> incr corrupted | Error f -> last_fault := Some f)
      buffers;
    match (!corrupted, !last_fault) with
    | 0, Some f -> Error f
    | n, _ -> Ok n
  in
  (* Victim: process its packet, verifying checksums. *)
  let addr, len = Option.get (Pktio.rx_pop (Machine.pktio m) ~nf:Scenario.victim_id) in
  let frame = victim_read_frame s ~addr ~len in
  let victim_sees_corruption =
    match Net.Packet.parse (Bytes.of_string frame) with Ok _ -> false | Error _ -> true
  in
  match attack with
  | Ok n when victim_sees_corruption ->
    { mode; succeeded = true; detail = Printf.sprintf "corrupted headers in %d victim buffers; NAT output ruined" n }
  | Ok n ->
    { mode; succeeded = false; detail = Printf.sprintf "wrote %d buffers but victim packet survived (unexpected)" n }
  | Error f -> { mode; succeeded = false; detail = Machine.fault_to_string f }

(* Length-prefixed pattern marshalling, as a DPI engine's rule memory. *)
let marshal_patterns pats =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%08d" (List.length pats));
  List.iter (fun p -> Buffer.add_string buf (Printf.sprintf "%08d%s" (String.length p) p)) pats;
  Buffer.contents buf

let unmarshal_patterns s =
  try
    let n = int_of_string (String.sub s 0 8) in
    let rec go off i acc =
      if i >= n then List.rev acc
      else begin
        let len = int_of_string (String.sub s off 8) in
        go (off + 8 + len) (i + 1) (String.sub s (off + 8) len :: acc)
      end
    in
    go 8 0 []
  with _ -> []

let ruleset_stealing mode =
  let s = Scenario.setup mode in
  let m = s.machine in
  let rng = Trace.Rng.create ~seed:0xA7 in
  let patterns = Nf.Rulegen.dpi_patterns rng ~n:40 in
  (* Victim installs its DPI ruleset in its private region, through its
     own TLB window (works in every mode). *)
  (match
     Machine.store_bytes m (Scenario.as_victim s) (Machine.Virt { core = 0; vaddr = 0x10000000 })
       (marshal_patterns patterns)
   with
  | Ok () -> ()
  | Error f -> failwith ("victim cannot install ruleset: " ^ Machine.fault_to_string f));
  (* Attacker: find the victim's region and exfiltrate it. *)
  let attack =
    let* buffers = scan_metadata s in
    let* region =
      match List.find_opt (fun (_, len) -> len >= s.victim_mem_len) buffers with
      | Some (addr, len) -> Ok (addr, len)
      | None -> Error (Machine.Denied { principal = Scenario.as_attacker s; addr = 0; reason = "region not found" })
    in
    let addr, _ = region in
    let* dump = Machine.load_bytes m (Scenario.as_attacker s) (Machine.Phys addr) ~len:8192 in
    Ok (unmarshal_patterns dump)
  in
  match attack with
  | Ok stolen ->
    let recovered = List.length (List.filter (fun p -> List.mem p patterns) stolen) in
    if 2 * recovered >= List.length patterns then
      {
        mode;
        succeeded = true;
        detail = Printf.sprintf "exfiltrated %d/%d DPI patterns verbatim" recovered (List.length patterns);
      }
    else { mode; succeeded = false; detail = Printf.sprintf "only %d patterns recovered" recovered }
  | Error f -> { mode; succeeded = false; detail = Machine.fault_to_string f }

let accel_hijack mode =
  let s = Scenario.setup mode in
  let m = s.machine in
  let mmio = Machine.accel_mmio_base m ~kind:Accel.Dpi ~cluster:s.victim_cluster in
  (* The victim registers its graph: graph pointer -> its own region.
     Where the victim cannot reach the registers itself (SE-UM syscall
     configuration, BlueField secure-only accelerators) the management
     software does it on its behalf. *)
  (match Machine.store_u64 m (Scenario.as_victim s) (Machine.Phys (mmio + Machine.mmio_reg_graph)) s.victim_mem with
  | Ok () -> ()
  | Error _ -> begin
    match Machine.store_u64 m Machine.Os (Machine.Phys (mmio + Machine.mmio_reg_graph)) s.victim_mem with
    | Ok () -> ()
    | Error f -> failwith ("victim cannot configure its cluster even via the OS: " ^ Machine.fault_to_string f)
  end);
  (* The attacker re-points it at memory it controls. *)
  let attack =
    Machine.store_u64 m (Scenario.as_attacker s) (Machine.Phys (mmio + Machine.mmio_reg_graph)) s.attacker_mem
  in
  let now_points_at = Physmem.read_u64 (Machine.mem m) (mmio + Machine.mmio_reg_graph) in
  match attack with
  | Ok () when now_points_at = s.attacker_mem ->
    {
      mode;
      succeeded = true;
      detail = "victim's vDPI now fetches its rule graph from attacker memory";
    }
  | Ok () -> { mode; succeeded = false; detail = "write landed but pointer unchanged (unexpected)" }
  | Error f -> { mode; succeeded = false; detail = Machine.fault_to_string f }

type dos_result = { policy : Bus.policy; alone_pps : float; under_attack_pps : float; retained : float }

let nic_hz = 1.2e9
let victim_ops_per_packet = 6
let victim_op_cost = 8
let attacker_op_cost = 64 (* a test_subsat-style locked read-modify-write *)

let run_dos policy ~with_attacker ~horizon =
  let bus = Bus.create ~policy ~clients:2 in
  let v_time = ref 0 and a_time = ref 0 in
  let packets = ref 0 and v_ops = ref 0 in
  while !v_time < horizon do
    (* The attacker floods: its next op is always pending. Issue strictly
       in time order so FCFS arbitration is faithful. *)
    if with_attacker && !a_time <= !v_time && !a_time < horizon then
      a_time := Bus.request bus ~client:1 ~now:!a_time ~cost:attacker_op_cost
    else begin
      v_time := Bus.request bus ~client:0 ~now:!v_time ~cost:victim_op_cost;
      incr v_ops;
      if !v_ops mod victim_ops_per_packet = 0 then incr packets
    end
  done;
  float_of_int !packets /. (float_of_int horizon /. nic_hz)

let bus_dos policy =
  let horizon = 2_000_000 in
  let alone_pps = run_dos policy ~with_attacker:false ~horizon in
  let under_attack_pps = run_dos policy ~with_attacker:true ~horizon in
  { policy; alone_pps; under_attack_pps; retained = under_attack_pps /. alone_pps }

let matrix () =
  List.map
    (fun mode -> (Machine.mode_name mode, packet_corruption mode, ruleset_stealing mode))
    [
      Machine.Liquidio_se_s;
      Machine.Liquidio_se_um { nf_xkphys = true };
      Machine.Liquidio_se_um { nf_xkphys = false };
      Machine.Agilio;
      Machine.Bluefield;
      Machine.Snic;
    ]

type covert_result = { policy : Bus.policy; bits : int; decoded : int; accuracy : float }

let bus_covert_channel policy =
  let bits = 64 in
  let window = 4_096 (* cycles per bit *) in
  let bus = Bus.create ~policy ~clients:2 in
  let rng = Trace.Rng.create ~seed:0xC0DE in
  let message = List.init bits (fun _ -> Trace.Rng.bool rng) in
  let s_time = ref 0 and r_time = ref 0 in
  let decoded = ref 0 in
  List.iter
    (fun bit ->
      let window_end = max !s_time !r_time + window in
      (* Sender: for a 1-bit, hammer the bus with long ops all window. *)
      if bit then
        while !s_time < window_end do
          s_time := Bus.request bus ~client:1 ~now:!s_time ~cost:64
        done
      else s_time := window_end;
      (* Receiver: issue a fixed burst of short ops and time it. *)
      let started = max !r_time (window_end - window) in
      r_time := started;
      for _ = 1 to 8 do
        r_time := Bus.request bus ~client:0 ~now:!r_time ~cost:8
      done;
      let elapsed = !r_time - started in
      (* Decode: above-threshold burst latency means "the sender was
         loud". The threshold is the uncontended burst cost plus slack. *)
      let guessed = elapsed > 8 * 8 * 4 in
      if guessed = bit then incr decoded;
      (* Re-align both parties at the window boundary. *)
      s_time := max !s_time window_end;
      r_time := max !r_time window_end)
    message;
  { policy; bits; decoded = !decoded; accuracy = float_of_int !decoded /. float_of_int bits }

type accel_probe_result = { shared : bool; idle_latency : int; busy_latency : int; distinguishable : bool }

let accel_contention ~shared =
  let measure victim_active =
    let accel = Accel.create ~kind:Accel.Dpi ~threads:32 ~cluster_size:(if shared then 32 else 16) in
    (* The victim saturates its threads (commodity: the same shared pool;
       S-NIC: its own cluster). *)
    if victim_active then
      for _ = 1 to 64 do
        if shared then ignore (Accel.submit_any accel ~now:0 ~bytes:9000)
        else ignore (Accel.submit accel ~cluster:1 ~now:0 ~bytes:9000)
      done;
    (* The attacker probes with one small request at t=0. *)
    let done_at =
      if shared then Accel.submit_any accel ~now:0 ~bytes:64 else Accel.submit accel ~cluster:0 ~now:0 ~bytes:64
    in
    done_at
  in
  let idle_latency = measure false in
  let busy_latency = measure true in
  { shared; idle_latency; busy_latency; distinguishable = busy_latency > idle_latency }
