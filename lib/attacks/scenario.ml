open Nicsim

type t = {
  machine : Machine.t;
  victim_mem : int;
  victim_mem_len : int;
  attacker_mem : int;
  attacker_mem_len : int;
  victim_cluster : int;
  attacker_cluster : int;
}

let victim_id = 0
let attacker_id = 1
let as_victim _ = Machine.Nf_code victim_id
let as_attacker _ = Machine.Nf_code attacker_id

let region_len = 64 * 1024
let vbase = 0x10000000

let install machine ~nf ~core =
  let base = Option.get (Alloc.alloc (Machine.alloc machine) ~owner:(Physmem.Nf nf) region_len) in
  Machine.bind_core machine ~core ~nf;
  ignore (Tlb.map_region (Machine.core_tlb machine ~core) ~vbase ~pbase:base ~len:region_len ~writable:true);
  if Machine.mode machine = Machine.Bluefield then
    (* On BlueField the NF's trusted state lives in secure-world memory. *)
    Machine.set_secure machine ~pos:base ~len:region_len true;
  base

let claim_cluster machine ~nf =
  let dpi = Machine.accel machine Accel.Dpi in
  let c = Option.get (Accel.claim_cluster dpi ~nf) in
  let mmio = Machine.accel_mmio_base machine ~kind:Accel.Dpi ~cluster:c in
  (match Machine.mode machine with
  | Machine.Snic ->
    (* What nf_launch does: the cluster's registers become the NF's. *)
    Physmem.set_owner (Machine.mem machine) ~pos:mmio ~len:Physmem.page_size (Physmem.Nf nf)
  | Machine.Bluefield ->
    (* TrustZone can mark an accelerator secure-only. *)
    Machine.set_secure machine ~pos:mmio ~len:Physmem.page_size true
  | _ -> ());
  c

let setup mode =
  let machine = Machine.create (Machine.default_config ~mode) in
  let victim_mem = install machine ~nf:victim_id ~core:0 in
  let attacker_mem = install machine ~nf:attacker_id ~core:1 in
  let victim_cluster = claim_cluster machine ~nf:victim_id in
  let attacker_cluster = claim_cluster machine ~nf:attacker_id in
  ignore (Pktio.reserve (Machine.pktio machine) ~nf:victim_id ~rx_bytes:65536 ~tx_bytes:65536);
  Pktio.add_rule (Machine.pktio machine) ~m:Pktio.match_any ~nf:victim_id;
  {
    machine;
    victim_mem;
    victim_mem_len = region_len;
    attacker_mem;
    attacker_mem_len = region_len;
    victim_cluster;
    attacker_cluster;
  }

let deliver_to_victim t pkt =
  match Pktio.deliver (Machine.pktio t.machine) (Net.Packet.serialize pkt) with
  | Ok nf when nf = victim_id -> Ok ()
  | Ok nf -> Error (Printf.sprintf "delivered to wrong NF %d" nf)
  | Error e -> Error e
