(** The §3.3 / §4.3 attacks re-expressed as canonical oracle traces.

    Each attack the [Attacks] module reproduces imperatively is also
    expressible as a handful of {!Oracle.Op} lines — the same primitive
    the fuzzing oracle discovers them with. Keeping both forms lets the
    test suite assert they agree: for every mode, the hand-written
    attack succeeds iff its oracle replay produces the expected
    violation class. The traces here are the "known answers" the CI
    oracle-smoke job greps for, and double as minimal regression inputs
    for [snic_cli oracle --replay]. *)

type replay = {
  name : string;
  paper_ref : string;  (** which section/attack of the paper this is *)
  ops : Oracle.Op.t list;
  expected : Oracle.Refmodel.cls;
      (** the violation class this trace must produce on a vulnerable
          mode, and must not produce on S-NIC *)
}

(** The canonical set: one replay per violation class the oracle
    knows how to report (packet corruption, ruleset stealing,
    accelerator hijack, NIC-OS snooping, DMA exfiltration, scrub
    residue, stale translation). *)
val all : replay list

val find : string -> replay option

(** [reproduces mode r] replays [r.ops] on a fresh machine in [mode]
    and reports whether a violation of class [r.expected] fired. *)
val reproduces : Nicsim.Machine.mode -> replay -> bool

(** [trace mode r] renders the replay as a [snic_cli oracle --replay]
    trace file. *)
val trace : Nicsim.Machine.mode -> replay -> string
