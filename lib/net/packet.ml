type proto = Tcp | Udp

type t = {
  src_mac : string;
  dst_mac : string;
  src_ip : Ipv4_addr.t;
  dst_ip : Ipv4_addr.t;
  proto : proto;
  src_port : int;
  dst_port : int;
  ttl : int;
  payload : string;
}

let default_src_mac = "\x02\x00\x00\x00\x00\x01"
let default_dst_mac = "\x02\x00\x00\x00\x00\x02"
let ethertype_ipv4 = 0x0800

let make ?(src_mac = default_src_mac) ?(dst_mac = default_dst_mac) ?(ttl = 64) ~src_ip ~dst_ip ~proto ~src_port
    ~dst_port payload =
  if String.length src_mac <> 6 || String.length dst_mac <> 6 then invalid_arg "Packet.make: MAC must be 6 bytes";
  if src_port < 0 || src_port > 0xffff || dst_port < 0 || dst_port > 0xffff then invalid_arg "Packet.make: bad port";
  { src_mac; dst_mac; src_ip; dst_ip; proto; src_port; dst_port; ttl; payload }

let proto_number = function Tcp -> 6 | Udp -> 17

let flow t =
  Five_tuple.make ~src_ip:t.src_ip ~dst_ip:t.dst_ip ~proto:(proto_number t.proto) ~src_port:t.src_port
    ~dst_port:t.dst_port

let eth_len = 14
let ipv4_len = 20
let l4_header_len = function Tcp -> 20 | Udp -> 8

let wire_length t = eth_len + ipv4_len + l4_header_len t.proto + String.length t.payload

let set_u16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 1) (Char.chr (v land 0xff))

let get_u16 b off = (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))

let set_u32 b off v =
  set_u16 b off ((v lsr 16) land 0xffff);
  set_u16 b (off + 2) (v land 0xffff)

let get_u32 b off = (get_u16 b off lsl 16) lor get_u16 b (off + 2)

(* One's-complement sum of the TCP/UDP pseudo-header. *)
let pseudo_header_sum t ~l4_len =
  let b = Bytes.create 12 in
  set_u32 b 0 t.src_ip;
  set_u32 b 4 t.dst_ip;
  Bytes.set b 8 '\000';
  Bytes.set b 9 (Char.chr (proto_number t.proto));
  set_u16 b 10 l4_len;
  Checksum.ones_sum b ~pos:0 ~len:12

let serialize t =
  let l4_len = l4_header_len t.proto + String.length t.payload in
  let total = wire_length t in
  let b = Bytes.make total '\000' in
  (* Ethernet *)
  Bytes.blit_string t.dst_mac 0 b 0 6;
  Bytes.blit_string t.src_mac 0 b 6 6;
  set_u16 b 12 ethertype_ipv4;
  (* IPv4 *)
  let ip = eth_len in
  Bytes.set b ip '\x45';
  set_u16 b (ip + 2) (ipv4_len + l4_len);
  Bytes.set b (ip + 8) (Char.chr (t.ttl land 0xff));
  Bytes.set b (ip + 9) (Char.chr (proto_number t.proto));
  set_u32 b (ip + 12) t.src_ip;
  set_u32 b (ip + 16) t.dst_ip;
  set_u16 b (ip + 10) (Checksum.checksum b ~pos:ip ~len:ipv4_len);
  (* L4 *)
  let l4 = ip + ipv4_len in
  set_u16 b l4 t.src_port;
  set_u16 b (l4 + 2) t.dst_port;
  (match t.proto with
  | Udp -> set_u16 b (l4 + 4) l4_len
  | Tcp ->
    (* Minimal TCP header: data offset 5, flags ACK. *)
    Bytes.set b (l4 + 12) '\x50';
    Bytes.set b (l4 + 13) '\x10');
  Bytes.blit_string t.payload 0 b (l4 + l4_header_len t.proto) (String.length t.payload);
  let ck_off = match t.proto with Tcp -> l4 + 16 | Udp -> l4 + 6 in
  let sum = Checksum.ones_sum ~init:(pseudo_header_sum t ~l4_len) b ~pos:l4 ~len:l4_len in
  set_u16 b ck_off (Checksum.finish sum);
  b

type parse_error =
  | Truncated of string
  | Bad_version of int
  | Unsupported_protocol of int
  | Bad_ipv4_checksum
  | Bad_l4_checksum

let pp_parse_error fmt = function
  | Truncated what -> Format.fprintf fmt "truncated %s" what
  | Bad_version v -> Format.fprintf fmt "bad IP version %d" v
  | Unsupported_protocol p -> Format.fprintf fmt "unsupported IP protocol %d" p
  | Bad_ipv4_checksum -> Format.fprintf fmt "bad IPv4 header checksum"
  | Bad_l4_checksum -> Format.fprintf fmt "bad TCP/UDP checksum"

let ( let* ) = Result.bind

let parse ?(verify_checksums = true) b =
  let len = Bytes.length b in
  let* () = if len < eth_len + ipv4_len then Error (Truncated "ethernet/ip header") else Ok () in
  let dst_mac = Bytes.sub_string b 0 6 and src_mac = Bytes.sub_string b 6 6 in
  let ip = eth_len in
  let vihl = Char.code (Bytes.get b ip) in
  let* () = if vihl lsr 4 <> 4 then Error (Bad_version (vihl lsr 4)) else Ok () in
  let ihl = (vihl land 0xf) * 4 in
  let* () = if ihl < 20 || len < ip + ihl then Error (Truncated "ipv4 options") else Ok () in
  let total_len = get_u16 b (ip + 2) in
  let* () = if len < ip + total_len then Error (Truncated "ipv4 body") else Ok () in
  let* () =
    if verify_checksums && Checksum.checksum b ~pos:ip ~len:ihl <> 0 then Error Bad_ipv4_checksum else Ok ()
  in
  let proto_num = Char.code (Bytes.get b (ip + 9)) in
  let* proto =
    match proto_num with 6 -> Ok Tcp | 17 -> Ok Udp | p -> Error (Unsupported_protocol p)
  in
  let ttl = Char.code (Bytes.get b (ip + 8)) in
  let src_ip = get_u32 b (ip + 12) and dst_ip = get_u32 b (ip + 16) in
  let l4 = ip + ihl in
  let l4_len = total_len - ihl in
  let hdr = l4_header_len proto in
  let* () = if l4_len < hdr then Error (Truncated "l4 header") else Ok () in
  let src_port = get_u16 b l4 and dst_port = get_u16 b (l4 + 2) in
  let t =
    { src_mac; dst_mac; src_ip; dst_ip; proto; src_port; dst_port; ttl;
      payload = Bytes.sub_string b (l4 + hdr) (l4_len - hdr) }
  in
  let* () =
    if not verify_checksums then Ok ()
    else begin
      let sum = Checksum.ones_sum ~init:(pseudo_header_sum t ~l4_len) b ~pos:l4 ~len:l4_len in
      if Checksum.finish sum <> 0 then Error Bad_l4_checksum else Ok ()
    end
  in
  Ok t

let equal a b = a = b

let pp fmt t =
  Format.fprintf fmt "%a ttl=%d len=%d" Five_tuple.pp (flow t) t.ttl (String.length t.payload)
