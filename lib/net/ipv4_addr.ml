type t = int

let of_octets a b c d =
  let ok x = x >= 0 && x <= 255 in
  if not (ok a && ok b && ok c && ok d) then invalid_arg "Ipv4_addr.of_octets";
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> begin
    let oct x =
      match int_of_string_opt x with
      | Some v when v >= 0 && v <= 255 -> v
      | _ -> invalid_arg ("Ipv4_addr.of_string: " ^ s)
    in
    of_octets (oct a) (oct b) (oct c) (oct d)
  end
  | _ -> invalid_arg ("Ipv4_addr.of_string: " ^ s)

let to_string t =
  Printf.sprintf "%d.%d.%d.%d" ((t lsr 24) land 0xff) ((t lsr 16) land 0xff) ((t lsr 8) land 0xff) (t land 0xff)

let in_prefix addr ~prefix ~len =
  if len < 0 || len > 32 then invalid_arg "Ipv4_addr.in_prefix";
  if len = 0 then true
  else begin
    let mask = 0xffffffff lxor ((1 lsl (32 - len)) - 1) in
    addr land mask = prefix land mask
  end

let pp fmt t = Format.pp_print_string fmt (to_string t)
