type t = { src_ip : Ipv4_addr.t; dst_ip : Ipv4_addr.t; proto : int; src_port : int; dst_port : int }

let make ~src_ip ~dst_ip ~proto ~src_port ~dst_port = { src_ip; dst_ip; proto; src_port; dst_port }

let equal a b =
  a.src_ip = b.src_ip && a.dst_ip = b.dst_ip && a.proto = b.proto && a.src_port = b.src_port && a.dst_port = b.dst_port

let compare = Stdlib.compare

(* SplitMix-style finalizer over the packed fields; flow keys feed hash
   tables sized in the hundreds of thousands, so the low bits must mix. *)
let hash t =
  let mix z =
    (* 62-bit-safe variant of the SplitMix64 finalizer constants. *)
    let z = (z lxor (z lsr 30)) * 0x2545F4914F6CDD1D in
    let z = (z lxor (z lsr 27)) * 0x1B873593CC9E2D51 in
    z lxor (z lsr 31)
  in
  let a = mix ((t.src_ip lsl 16) lxor t.src_port) in
  let b = mix ((t.dst_ip lsl 16) lxor t.dst_port lxor (t.proto lsl 48)) in
  mix (a lxor (b * 0x9E3779B97F4A7C1)) land max_int

let reverse t =
  { src_ip = t.dst_ip; dst_ip = t.src_ip; proto = t.proto; src_port = t.dst_port; dst_port = t.src_port }

let to_string t =
  Printf.sprintf "%s:%d -> %s:%d /%d" (Ipv4_addr.to_string t.src_ip) t.src_port (Ipv4_addr.to_string t.dst_ip)
    t.dst_port t.proto

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
