(** IPv4 addresses as host-order ints in [0, 2^32). *)

type t = int

val of_string : string -> t
(** Parses dotted-quad; raises [Invalid_argument] on malformed input. *)

val to_string : t -> string

(** [of_octets a b c d] builds [a.b.c.d]. *)
val of_octets : int -> int -> int -> int -> t

(** [in_prefix addr ~prefix ~len] tests membership in [prefix/len]. *)
val in_prefix : t -> prefix:t -> len:int -> bool

val pp : Format.formatter -> t -> unit
