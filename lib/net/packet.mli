(** Parsed packet representation with on-the-wire serialization.

    The simulator moves packets between the wire, on-NIC RAM and network
    functions as raw bytes (Ethernet / IPv4 / TCP|UDP frames); NFs operate
    on this parsed view. [serialize] and [parse] are exact inverses for
    well-formed packets, and [serialize] computes correct IPv4 and L4
    checksums so corruption (e.g. by the §3.3 packet-corruption attack) is
    detectable. *)

type proto = Tcp | Udp

type t = {
  src_mac : string; (* 6 bytes *)
  dst_mac : string; (* 6 bytes *)
  src_ip : Ipv4_addr.t;
  dst_ip : Ipv4_addr.t;
  proto : proto;
  src_port : int;
  dst_port : int;
  ttl : int;
  payload : string;
}

val make :
  ?src_mac:string ->
  ?dst_mac:string ->
  ?ttl:int ->
  src_ip:Ipv4_addr.t ->
  dst_ip:Ipv4_addr.t ->
  proto:proto ->
  src_port:int ->
  dst_port:int ->
  string ->
  t

val flow : t -> Five_tuple.t

val proto_number : proto -> int

(** Total on-the-wire frame length in bytes. *)
val wire_length : t -> int

(** [serialize t] builds the Ethernet frame with valid checksums. *)
val serialize : t -> Bytes.t

type parse_error =
  | Truncated of string
  | Bad_version of int
  | Unsupported_protocol of int
  | Bad_ipv4_checksum
  | Bad_l4_checksum

val pp_parse_error : Format.formatter -> parse_error -> unit

(** [parse ?verify_checksums frame] parses an Ethernet frame.
    [verify_checksums] defaults to [true]. *)
val parse : ?verify_checksums:bool -> Bytes.t -> (t, parse_error) result

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
