(** The classic 5-tuple flow key: source/destination IP, protocol,
    source/destination port. Commodity NICs and S-NIC both express packet
    switching rules as predicates over this tuple (§3.1). *)

type t = {
  src_ip : Ipv4_addr.t;
  dst_ip : Ipv4_addr.t;
  proto : int; (* IP protocol number: 6 = TCP, 17 = UDP *)
  src_port : int;
  dst_port : int;
}

val make : src_ip:Ipv4_addr.t -> dst_ip:Ipv4_addr.t -> proto:int -> src_port:int -> dst_port:int -> t

val equal : t -> t -> bool
val compare : t -> t -> int

(** A well-mixed hash suitable for hash-table flow caches. *)
val hash : t -> int

(** The tuple of the reverse direction. *)
val reverse : t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Hashtbl functor instance keyed by 5-tuples. *)
module Table : Hashtbl.S with type key = t
