type vni = int

let vxlan_port = 4789

type encapsulated = { vni : vni; outer_src_ip : Ipv4_addr.t; outer_dst_ip : Ipv4_addr.t; inner : Packet.t }

(* 8-byte VXLAN header: flags (bit 3 = valid VNI), 3 reserved, VNI, reserved. *)
let header vni =
  let b = Bytes.make 8 '\000' in
  Bytes.set b 0 '\x08';
  Bytes.set b 4 (Char.chr ((vni lsr 16) land 0xff));
  Bytes.set b 5 (Char.chr ((vni lsr 8) land 0xff));
  Bytes.set b 6 (Char.chr (vni land 0xff));
  Bytes.to_string b

let encapsulate ~vni ~outer_src_ip ~outer_dst_ip inner =
  if vni < 0 || vni > 0xffffff then invalid_arg "Vxlan.encapsulate: VNI exceeds 24 bits";
  let inner_frame = Bytes.to_string (Packet.serialize inner) in
  (* Source port is derived from the inner flow hash for ECMP spreading,
     as RFC 7348 recommends. *)
  let sport = 49152 + (Five_tuple.hash (Packet.flow inner) land 0x3fff) in
  Packet.make ~src_ip:outer_src_ip ~dst_ip:outer_dst_ip ~proto:Packet.Udp ~src_port:sport ~dst_port:vxlan_port
    (header vni ^ inner_frame)

let is_vxlan (p : Packet.t) = p.proto = Packet.Udp && p.dst_port = vxlan_port

let decapsulate (outer : Packet.t) =
  if not (is_vxlan outer) then Error "not a VXLAN packet (wrong proto/port)"
  else if String.length outer.payload < 8 then Error "truncated VXLAN header"
  else if Char.code outer.payload.[0] land 0x08 = 0 then Error "VNI-valid flag not set"
  else begin
    let vni =
      (Char.code outer.payload.[4] lsl 16) lor (Char.code outer.payload.[5] lsl 8) lor Char.code outer.payload.[6]
    in
    let inner_frame = String.sub outer.payload 8 (String.length outer.payload - 8) in
    match Packet.parse (Bytes.of_string inner_frame) with
    | Ok inner -> Ok { vni; outer_src_ip = outer.src_ip; outer_dst_ip = outer.dst_ip; inner }
    | Error e -> Error (Format.asprintf "inner frame: %a" Packet.pp_parse_error e)
  end
