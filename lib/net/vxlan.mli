(** VXLAN (RFC 7348) encapsulation.

    S-NIC lets a network function act as a VXLAN endpoint so that it can
    join a tenant's virtual Layer-2 topology (§4.4); switching rules may
    match on the VNI in addition to MAC addresses and 5-tuples. *)

(** 24-bit Virtual Network Identifier. *)
type vni = int

val vxlan_port : int
(** IANA UDP port 4789. *)

type encapsulated = {
  vni : vni;
  outer_src_ip : Ipv4_addr.t;
  outer_dst_ip : Ipv4_addr.t;
  inner : Packet.t;
}

(** [encapsulate ~vni ~outer_src_ip ~outer_dst_ip inner] wraps [inner]'s
    full Ethernet frame in an outer UDP/VXLAN packet. Raises
    [Invalid_argument] if [vni] exceeds 24 bits. *)
val encapsulate : vni:vni -> outer_src_ip:Ipv4_addr.t -> outer_dst_ip:Ipv4_addr.t -> Packet.t -> Packet.t

(** [decapsulate outer] recovers the VNI and the inner packet; [Error]
    describes the failure (not VXLAN, bad flags, inner parse error). *)
val decapsulate : Packet.t -> (encapsulated, string) result

(** [is_vxlan p] holds when [p] is addressed to the VXLAN UDP port. *)
val is_vxlan : Packet.t -> bool
