(** RFC 1071 Internet checksum, used by IPv4/TCP/UDP serialization. *)

(** [ones_sum ?init b ~pos ~len] accumulates the 16-bit one's-complement
    sum (not yet complemented). *)
val ones_sum : ?init:int -> Bytes.t -> pos:int -> len:int -> int

(** [finish sum] folds carries and complements, yielding the 16-bit
    checksum field value. *)
val finish : int -> int

(** [checksum b ~pos ~len] is [finish (ones_sum b ~pos ~len)]. *)
val checksum : Bytes.t -> pos:int -> len:int -> int
