(** RFC 1071 Internet checksum, used by IPv4/TCP/UDP serialization. *)

(** [ones_sum ?init b ~pos ~len] accumulates the 16-bit one's-complement
    sum (not yet complemented). *)
val ones_sum : ?init:int -> Bytes.t -> pos:int -> len:int -> int

(** [finish sum] folds carries and complements, yielding the 16-bit
    checksum field value. *)
val finish : int -> int

(** [checksum b ~pos ~len] is [finish (ones_sum b ~pos ~len)]. *)
val checksum : Bytes.t -> pos:int -> len:int -> int

(** [update ~old ~old_word ~new_word] is the RFC 1624 incremental
    update: the checksum after one aligned 16-bit word changes from
    [old_word] to [new_word] under prior checksum [old], without
    re-summing the buffer.  Agrees with a full recompute except on a
    buffer whose new content is all zeros, where the two encodings of
    one's-complement zero ([0x0000] vs [0xFFFF]) differ — both verify
    identically.  Raises [Invalid_argument] if any argument is outside
    [0, 0xFFFF]. *)
val update : old:int -> old_word:int -> new_word:int -> int
