let ones_sum ?(init = 0) b ~pos ~len =
  let sum = ref init in
  let i = ref pos in
  let stop = pos + len in
  while !i < stop - 1 do
    sum := !sum + (Char.code (Bytes.get b !i) lsl 8) + Char.code (Bytes.get b (!i + 1));
    i := !i + 2
  done;
  if len land 1 = 1 then sum := !sum + (Char.code (Bytes.get b (stop - 1)) lsl 8);
  !sum

let finish sum =
  let s = ref sum in
  while !s lsr 16 <> 0 do
    s := (!s land 0xffff) + (!s lsr 16)
  done;
  lnot !s land 0xffff

let checksum b ~pos ~len = finish (ones_sum b ~pos ~len)
