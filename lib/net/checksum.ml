let ones_sum ?(init = 0) b ~pos ~len =
  let sum = ref init in
  let i = ref pos in
  let stop = pos + len in
  while !i < stop - 1 do
    sum := !sum + (Char.code (Bytes.get b !i) lsl 8) + Char.code (Bytes.get b (!i + 1));
    i := !i + 2
  done;
  if len land 1 = 1 then sum := !sum + (Char.code (Bytes.get b (stop - 1)) lsl 8);
  !sum

let finish sum =
  let s = ref sum in
  while !s lsr 16 <> 0 do
    s := (!s land 0xffff) + (!s lsr 16)
  done;
  lnot !s land 0xffff

let checksum b ~pos ~len = finish (ones_sum b ~pos ~len)

(* RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m'), all in 16-bit
   one's-complement arithmetic.  [finish] supplies the fold-and-
   complement, so the incremental update reuses the same carry
   handling as a full recompute. *)
let update ~old ~old_word ~new_word =
  if old < 0 || old > 0xffff then invalid_arg "Checksum.update: old must be a 16-bit value";
  if old_word < 0 || old_word > 0xffff then invalid_arg "Checksum.update: old_word must be a 16-bit value";
  if new_word < 0 || new_word > 0xffff then invalid_arg "Checksum.update: new_word must be a 16-bit value";
  finish ((lnot old land 0xffff) + (lnot old_word land 0xffff) + new_word)
