(** Per-NF memory-access streams for the cache/bus timing model.

    The paper's Figure 5 runs the real NF binaries under gem5. Our
    substitute instruments the real OCaml NF implementations: each NF's
    probe callback reports the table slots / automaton states it actually
    touches while processing a seeded ICTF-like trace (Zipf 1.1 flow
    popularity, as §5.3), and those probes are mapped onto a synthetic
    address space sized to the NF's measured working set (Table 6). Each
    packet also contributes streaming accesses over its payload bytes. *)

type t = {
  nf : string;
  addrs : int array; (* line-granular physical addresses, in order *)
  packets : int; (* packets the stream covers *)
  instructions : int; (* modeled dynamic instruction count *)
  exec_cycles_per_access : int; (* compute between recorded accesses *)
}

(** [stream ?packets ?seed name] builds (and memoizes) the stream for one
    of the six NFs. DPI builds its full 33,471-pattern automaton once. *)
val stream : ?packets:int -> ?seed:int -> string -> t

(** [rebase t ~domain] shifts every address into a disjoint per-domain
    window so colocated instances never alias. *)
val rebase : t -> domain:int -> t

(** All six NF names in paper order. *)
val names : string list

(** Modeled working-set bytes of the primary region (for tests). *)
val working_set_bytes : string -> int
