type stats = { median : float; p1 : float; p99 : float }

let default_l2_sizes =
  [ 8 * 1024; 16 * 1024; 32 * 1024; 64 * 1024; 128 * 1024; 256 * 1024; 512 * 1024;
    1 lsl 20; 2 lsl 20; 4 lsl 20; 8 lsl 20; 16 lsl 20 ]

let default_cotenancy = [ 2; 3; 4; 8; 16 ]

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) and hi = int_of_float (Float.ceil pos) in
    let frac = pos -. Float.floor pos in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let stats_of values =
  let arr = Array.of_list values in
  Array.sort compare arr;
  { median = percentile arr 0.5; p1 = percentile arr 0.01; p99 = percentile arr 0.99 }

let mean = function [] -> 0. | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let run_mix ?packets ?seed ~l2_bytes names =
  let streams =
    Array.of_list (List.mapi (fun d name -> Workload.rebase (Workload.stream ?packets ?seed name) ~domain:d) names)
  in
  Cpu_model.degradation ~l2_bytes streams

let pair_degradations ?packets ?seed ~l2_bytes target =
  List.map
    (fun partner ->
      let degs = run_mix ?packets ?seed ~l2_bytes [ target; partner ] in
      snd degs.(0))
    Workload.names

let figure5a ?(l2_sizes = default_l2_sizes) ?packets ?seed () =
  List.map
    (fun nf ->
      ( nf,
        List.map (fun size -> (size, stats_of (pair_degradations ?packets ?seed ~l2_bytes:size nf))) l2_sizes ))
    Workload.names

let figure5b ?(cotenancy = default_cotenancy) ?(samples = 6) ?packets ?seed () =
  let l2_bytes = 4 lsl 20 in
  let all = Array.of_list Workload.names in
  List.map
    (fun nf ->
      ( nf,
        List.map
          (fun n ->
            (* Sample partner mixes deterministically; with 2 tenants all
               partners are enumerated instead. *)
            let degs =
              if n = 2 then pair_degradations ?packets ?seed ~l2_bytes nf
              else begin
                (* The mix-sampling seed derives from the caller's seed
                   when given (offset per degree so degrees stay
                   decorrelated); the default preserves historic output. *)
                let rng = Trace.Rng.create ~seed:(match seed with None -> 0xC0 + n | Some s -> s + 0xC0 + n) in
                List.init samples (fun _ ->
                    let partners = List.init (n - 1) (fun _ -> Trace.Rng.pick rng all) in
                    let degs = run_mix ?packets ?seed ~l2_bytes (nf :: partners) in
                    snd degs.(0))
              end
            in
            (n, stats_of degs))
          cotenancy ))
    Workload.names
