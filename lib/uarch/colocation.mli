(** Colocation sweeps reproducing Figure 5.

    For each NF we measure the IPC degradation S-NIC's isolation causes,
    across every possible colocation with other NFs (Figure 5a: two
    colocated NFs, varying L2 size; Figure 5b: 4 MB L2, varying
    co-tenancy), reporting the median with 1st/99th-percentile error
    bars, as the paper does. *)

type stats = { median : float; p1 : float; p99 : float }

(** [pair_degradations ?packets ?seed ~l2_bytes target] — degradation of
    [target] in each 2-NF colocation (one per possible partner). [seed]
    drives the underlying {!Workload.stream} traces (default [0x5EED]). *)
val pair_degradations : ?packets:int -> ?seed:int -> l2_bytes:int -> string -> float list

(** Figure 5a: per NF, per L2 size, stats over all 2-NF colocations.
    Default sizes are the paper's 8 KB .. 16 MB sweep. *)
val figure5a : ?l2_sizes:int list -> ?packets:int -> ?seed:int -> unit -> (string * (int * stats) list) list

(** Figure 5b: per NF, per co-tenancy degree (default the paper's
    {2,3,4,8,16}), stats over sampled colocation mixes at 4 MB L2.
    [seed] drives both the workload traces and the partner-mix sampling;
    omitting it reproduces the historic fixed-seed output. *)
val figure5b :
  ?cotenancy:int list -> ?samples:int -> ?packets:int -> ?seed:int -> unit -> (string * (int * stats) list) list

val default_l2_sizes : int list
val default_cotenancy : int list

(** Aggregate helpers used by the bench narrative ("average median IPC
    degradation at 4 NFs is 0.93%"). *)
val mean : float list -> float

val stats_of : float list -> stats
