open Nicsim

type point = { threads : int; frame_bytes : int; mpps : float }

let nic_hz = 1.2e9

(* Per-packet generation cost on a producer core (build headers, touch
   payload, post the descriptor): 16 cores at 18k cycles/packet cap the
   pipeline at ~1.07 Mpps, the flat ceiling of the paper's small-frame
   curves. *)
let default_producer_cycles = 18_000

let simulate ?(kind = Accel.Dpi) ?(producer_cores = 16) ?(producer_cycles_per_pkt = default_producer_cycles)
    ?(packets = 4_000) ~threads ~frame_bytes () =
  let accel = Accel.create ~kind ~threads ~cluster_size:threads in
  (* Producer c emits its k-th packet at (k+1) * cost; merge the 16
     producer timelines in time order and push each frame through the
     accelerator's earliest-free thread. *)
  let next_emit = Array.make producer_cores 0 in
  let last_completion = ref 0 in
  for _ = 1 to packets do
    let c = ref 0 in
    for k = 1 to producer_cores - 1 do
      if next_emit.(k) < next_emit.(!c) then c := k
    done;
    let emit_time = next_emit.(!c) + producer_cycles_per_pkt in
    next_emit.(!c) <- emit_time;
    let done_at = Accel.submit accel ~cluster:0 ~now:emit_time ~bytes:frame_bytes in
    if done_at > !last_completion then last_completion := done_at
  done;
  float_of_int packets /. (float_of_int !last_completion /. nic_hz) /. 1e6

let figure8 ?packets () =
  List.concat_map
    (fun threads ->
      List.map
        (fun frame_bytes -> { threads; frame_bytes; mpps = simulate ?packets ~threads ~frame_bytes () })
        Trace.Flowgen.figure8_frame_sizes)
    [ 16; 32; 48 ]
