(** Trace-driven multi-core timing model: private L1s, a shared
    (optionally hard-partitioned) L2, and the internal bus (optionally
    temporally partitioned) in front of DRAM.

    This is the gem5 stand-in for Figure 5: the *relative* IPC of a
    domain under S-NIC isolation (hard cache partition + bus temporal
    partitioning) versus the commodity baseline (shared cache,
    free-for-all bus) at identical co-tenancy. Domains advance in global
    time order, so bus contention is order-faithful. *)

type params = {
  l1_bytes : int;
  l1_ways : int;
  line_bits : int;
  l2_ways : int;
  l2_hit_cycles : int;
  dram_cycles : int; (* latency after the bus transfer completes *)
  bus_cost : int; (* bus occupancy of one line fill *)
  epoch : int; (* temporal-partitioning epoch (S-NIC config) *)
  dead : int;
}

val default_params : params

type isolation =
  | Baseline (* shared cache, free-for-all bus (commodity) *)
  | Snic (* hard cache partition + temporal bus (the paper's design) *)
  | Cache_only (* hard cache partition, free-for-all bus *)
  | Bus_only (* shared cache, temporal bus *)

type domain_result = {
  nf : string;
  instructions : int;
  cycles : int;
  ipc : float;
  l1_miss_rate : float;
  l2_miss_rate : float;
}

val default_horizon : int

(** [run ~params ~l2_bytes ~isolation streams] co-runs [streams] (one per
    domain, wrapped cyclically) for [horizon] cycles and returns
    per-domain results. *)
val run :
  ?params:params -> ?horizon:int -> l2_bytes:int -> isolation:isolation -> Workload.t array -> domain_result array

(** [degradation ~params ~l2_bytes streams] — per-domain relative IPC
    loss of [Snic] vs [Baseline], in percent. *)
val degradation : ?params:params -> ?horizon:int -> l2_bytes:int -> Workload.t array -> (string * float) array
