open Nicsim

type params = {
  l1_bytes : int;
  l1_ways : int;
  line_bits : int;
  l2_ways : int;
  l2_hit_cycles : int;
  dram_cycles : int;
  bus_cost : int;
  epoch : int;
  dead : int;
}

(* Matched to the Marvell configuration the paper copies into gem5
   (1.2 GHz cores, 32 KB L1, 16-way L2) with a DDR3-style main memory. *)
let default_params =
  {
    l1_bytes = 32 * 1024;
    l1_ways = 4;
    line_bits = 6;
    l2_ways = 16;
    l2_hit_cycles = 12;
    dram_cycles = 80;
    bus_cost = 8;
    epoch = 12;
    dead = 2;
  }

type isolation = Baseline | Snic | Cache_only | Bus_only

type domain_result = {
  nf : string;
  instructions : int;
  cycles : int;
  ipc : float;
  l1_miss_rate : float;
  l2_miss_rate : float;
}

let default_horizon = 2_000_000

let run ?(params = default_params) ?(horizon = default_horizon) ~l2_bytes ~isolation streams =
  let n = Array.length streams in
  if n = 0 then invalid_arg "Cpu_model.run: no streams";
  let line = 1 lsl params.line_bits in
  let l1 () =
    Cache.create ~sets:(params.l1_bytes / line / params.l1_ways) ~ways:params.l1_ways ~line_bits:params.line_bits
      ~mode:Cache.Shared ~domains:1
  in
  let l2_sets = max 1 (l2_bytes / line / params.l2_ways) in
  let l2 =
    Cache.create ~sets:l2_sets ~ways:params.l2_ways ~line_bits:params.line_bits
      ~mode:(match isolation with Baseline | Bus_only -> Cache.Shared | Snic | Cache_only -> Cache.Hard)
      ~domains:n
  in
  let bus =
    Bus.create
      ~policy:
        (match isolation with
        | Baseline | Cache_only -> Bus.Free_for_all
        | Snic | Bus_only -> Bus.Temporal { epoch = params.epoch; dead = params.dead })
      ~clients:n
  in
  let l1s = Array.init n (fun _ -> l1 ()) in
  let clock = Array.make n 0 in
  let idx = Array.make n 0 in
  let accesses = Array.make n 0 in
  let l1_miss = Array.make n 0 and l2_miss = Array.make n 0 in
  (* All domains co-run for a fixed window, wrapping their streams, like
     the paper's continuously loaded NFs: a domain whose stream is short
     does not stop contending. *)
  let remaining = ref n in
  let finished = Array.make n false in
  while !remaining > 0 do
    (* Advance the in-window domain that is earliest in global time, so
       shared-resource contention happens in true time order. *)
    let d = ref (-1) in
    for k = 0 to n - 1 do
      if (not finished.(k)) && (!d < 0 || clock.(k) < clock.(!d)) then d := k
    done;
    let d = !d in
    let stream = streams.(d) in
    let addr = stream.Workload.addrs.(idx.(d)) in
    clock.(d) <- clock.(d) + stream.Workload.exec_cycles_per_access;
    (match Cache.access l1s.(d) ~domain:0 ~addr with
    | Cache.Hit -> ()
    | Cache.Miss -> begin
      l1_miss.(d) <- l1_miss.(d) + 1;
      clock.(d) <- clock.(d) + params.l2_hit_cycles;
      match Cache.access l2 ~domain:d ~addr with
      | Cache.Hit -> ()
      | Cache.Miss ->
        l2_miss.(d) <- l2_miss.(d) + 1;
        let done_at = Bus.request bus ~client:d ~now:clock.(d) ~cost:params.bus_cost in
        clock.(d) <- done_at + params.dram_cycles
    end);
    accesses.(d) <- accesses.(d) + 1;
    idx.(d) <- (idx.(d) + 1) mod Array.length stream.Workload.addrs;
    if clock.(d) >= horizon then begin
      finished.(d) <- true;
      decr remaining
    end
  done;
  Array.init n (fun d ->
      let instructions = accesses.(d) * streams.(d).Workload.exec_cycles_per_access in
      {
        nf = streams.(d).Workload.nf;
        instructions;
        cycles = clock.(d);
        ipc = float_of_int instructions /. float_of_int (max 1 clock.(d));
        l1_miss_rate = float_of_int l1_miss.(d) /. float_of_int (max 1 accesses.(d));
        l2_miss_rate = float_of_int l2_miss.(d) /. float_of_int (max 1 l1_miss.(d));
      })

let degradation ?params ?horizon ~l2_bytes streams =
  let base = run ?params ?horizon ~l2_bytes ~isolation:Baseline streams in
  let snic = run ?params ?horizon ~l2_bytes ~isolation:Snic streams in
  Array.init (Array.length streams) (fun d ->
      (base.(d).nf, 100. *. (1. -. (snic.(d).ipc /. base.(d).ipc))))
