let names = [ "FW"; "DPI"; "NAT"; "LB"; "LPM"; "Mon"; "CKF"; "SYNP" ]

type t = { nf : string; addrs : int array; packets : int; instructions : int; exec_cycles_per_access : int }

(* Compute density between recorded memory touches. A recorded access for
   most NFs is one table lookup surrounded by a couple of hundred
   instructions of parsing, hashing and branching; DPI records one access
   per automaton step (one payload byte), which costs only a dozen
   instructions. These densities make the baseline IPC ~1 and set the
   fraction of time exposed to memory-system interference. *)
let exec_cycles nf =
  match nf with
  | "FW" -> 180
  | "DPI" -> 112
  | "NAT" -> 180
  | "LB" -> 220
  | "LPM" -> 200
  | "Mon" -> 200
  | "CKF" -> 190
  | "SYNP" -> 240 (* cookie MAC compute between bucket probes *)
  | _ -> 200

(* Synthetic address-space layout for one NF instance. *)
let table_base = 0x0800_0000 (* region 0: the primary data structure *)
let aux_base = 0x4000_0000 (* region 1: secondary tables (LPM tbl8) *)
let ring_base = 0x7000_0000 (* packet buffers *)
let ring_slots = 16
let slot_bytes = 2048

(* Bytes per probed slot, sized so region 0 spans the NF's measured
   working set (Table 6): FW 200k-slot flow cache ~13.6 MB, DPI automaton
   ~24 MB, NAT translation table ~40 MB, LB Maglev table ~0.5 MB, LPM
   tbl24 32 MB, Mon flow table ~11 MB at 100k flows. *)
let entry_bytes nf region =
  match (nf, region) with
  | "FW", _ -> 68
  | "DPI", _ -> 64
  | "NAT", _ -> 640
  | "LB", _ -> 8
  | "LPM", 0 -> 2
  | "LPM", _ -> 2
  | "Mon", _ -> 113
  | "CKF", _ | "SYNP", _ -> 8 (* one 4-slot bucket of 12-bit fingerprints *)
  | _ -> 64

let working_set_bytes nf =
  match nf with
  | "FW" -> 200_000 * 68
  | "DPI" -> 380_000 * 64
  | "NAT" -> 65_536 * 640
  | "LB" -> 65_537 * 8
  | "LPM" -> (1 lsl 24) * 2
  | "Mon" -> 100_000 * 113
  (* CuckooGuard pair: the fixed 2^14-bucket filter reservation —
     cache-resident by design, which is the point of the defense. *)
  | "CKF" | "SYNP" -> (1 lsl 14) * 8
  | _ -> invalid_arg ("Uarch.Workload: unknown NF " ^ nf)

(* A growable int vector (no Dynarray before OCaml 5.2). *)
module Vec = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 4096 0; n = 0 }

  let push v x =
    if v.n = Array.length v.a then begin
      let b = Array.make (2 * v.n) 0 in
      Array.blit v.a 0 b 0 v.n;
      v.a <- b
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1

  let to_array v = Array.sub v.a 0 v.n
end

let generate ~packets ~seed nf_name =
  let vec = Vec.create () in
  (* The SIMD aho_corasick crate the paper uses runs a memchr prefilter:
     only ~1 in 8 payload bytes reaches the DFA. Model that by recording
     every 8th automaton-state probe (the skipped bytes are pure SIMD
     compute, folded into exec_cycles_per_access). *)
  let dpi_ctr = ref 0 in
  let probe ~region ~index =
    let record =
      if String.equal nf_name "DPI" then begin
        incr dpi_ctr;
        !dpi_ctr land 7 = 0
      end
      else true
    in
    if record then Vec.push vec ((if region = 0 then table_base else aux_base) + (index * entry_bytes nf_name region))
  in
  let spec = Nf.Registry.find nf_name in
  let nf = spec.Nf.Registry.build ~probe ~scale:1.0 () in
  let trace = Trace.Tracegen.ictf_like ~n_flows:100_000 ~seed ~packets () in
  let i = ref 0 in
  Seq.iter
    (fun pkt ->
      (* Streaming access over the packet bytes in its ring buffer. *)
      let slot = ring_base + (!i mod ring_slots * slot_bytes) in
      let wire = Net.Packet.wire_length pkt in
      let lines = (wire + 63) / 64 in
      for k = 0 to lines - 1 do
        Vec.push vec (slot + (k * 64))
      done;
      incr i;
      ignore (nf.Nf.Types.process pkt))
    (Trace.Tracegen.packets trace);
  let addrs = Vec.to_array vec in
  let exec = exec_cycles nf_name in
  { nf = nf_name; addrs; packets; instructions = exec * Array.length addrs; exec_cycles_per_access = exec }

let cache : (string * int * int, t) Hashtbl.t = Hashtbl.create 16

let stream ?(packets = 2000) ?(seed = 0x5EED) nf_name =
  if not (List.mem nf_name names) then invalid_arg ("Uarch.Workload: unknown NF " ^ nf_name);
  let key = (nf_name, packets, seed) in
  match Hashtbl.find_opt cache key with
  | Some t -> t
  | None ->
    let t = generate ~packets ~seed nf_name in
    Hashtbl.add cache key t;
    t

let rebase t ~domain =
  if domain = 0 then t
  else begin
    let off = domain lsl 33 in
    { t with addrs = Array.map (fun a -> a + off) t.addrs }
  end
