(** DPI-accelerator throughput vs thread-cluster size and frame size
    (Figure 8 / Appendix C).

    Sixteen programmable cores generate frames as fast as they can and
    feed a virtual DPI accelerator with 16/32/48 hardware threads; the
    measured quantity is packets per second. Small frames are
    producer-bound (flat in cluster size); jumbo frames are
    accelerator-bound and scale with threads. *)

type point = { threads : int; frame_bytes : int; mpps : float }

(** [simulate ?kind ~threads ~frame_bytes ()] returns Mpps at the NIC's
    1.2 GHz clock ([kind] defaults to the paper's DPI engine; ZIP and
    RAID reuse the same harness as an extension). *)
val simulate :
  ?kind:Nicsim.Accel.kind ->
  ?producer_cores:int ->
  ?producer_cycles_per_pkt:int ->
  ?packets:int ->
  threads:int ->
  frame_bytes:int ->
  unit ->
  float

(** The full figure: cluster sizes {16,32,48} x frame sizes
    {64, 512, 1500, 9000}. *)
val figure8 : ?packets:int -> unit -> point list

val nic_hz : float
