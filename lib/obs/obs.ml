(* Root of the observability library: [Obs.sink] and the emit API come
   from [Sink]; [Obs.Metrics] is the counter/histogram registry and
   [Obs.Chrome] the trace_event exporter. *)

module Metrics = Metrics
module Chrome = Chrome
include Sink
