(* Root of the observability library: [Obs.sink] and the emit API come
   from [Sink]; [Obs.Metrics] is the counter/histogram registry,
   [Obs.Chrome] the trace_event exporter, and [Obs.Fairness] the
   per-tenant goodput-share / Jain-index report. *)

module Metrics = Metrics
module Chrome = Chrome
module Fairness = Fairness
include Sink
