(** Jain's fairness index and weighted goodput-share reports.

    The scalar OSMOSIS-style fairness measure for a multi-tenant
    datapath: [jain xs] is [(sum xs)^2 / (n * sum xs^2)] — 1.0 for a
    perfectly even allocation, [1/n] when one party takes everything.
    For weighted schedulers, {!weighted_report} normalizes each party's
    goodput by its weight before scoring, so weight-proportional service
    also scores 1.0. *)

val jain : float list -> float
(** Jain's fairness index; 1.0 on the empty or all-zero list. *)

type row = {
  id : int;
  value : float;  (** raw goodput (bytes, packets...) *)
  weight : float;
  share : float;  (** value / total value *)
  expected : float;  (** weight / total weight *)
}

type report = {
  rows : row list;
  index : float;  (** Jain's index over weight-normalized goodput *)
  max_rel_err : float;  (** worst [|share - expected| / expected] *)
}

val weighted_report : (int * float * float) list -> report
(** [weighted_report [(id, goodput, weight); ...]] scores how close the
    observed goodput split is to the configured weight split. *)

val latency_jain : float list -> float
(** Jain's index over per-tenant {e tail latency}, e.g. p99s.  Latency
    is lower-is-better, so each entry is scored as the service rate
    [1/p99]: equal tails give 1.0, one tenant starved behind a noisy
    neighbor drags the index toward [1/n].  Non-positive entries score
    a rate of 0. *)

val latency_weighted_report : (int * float * float) list -> report
(** [latency_weighted_report [(id, p99, weight); ...]] — the weighted
    latency variant: a weight-[w] tenant is expected to see a tail
    [~w] times shorter, so the report is {!weighted_report} over
    [(id, 1/p99, weight)].  Row [value]s are service rates. *)

val summary : report -> string
(** Multi-line human-readable table with a jain/max-err footer. *)
