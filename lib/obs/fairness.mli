(** Jain's fairness index and weighted goodput-share reports.

    The scalar OSMOSIS-style fairness measure for a multi-tenant
    datapath: [jain xs] is [(sum xs)^2 / (n * sum xs^2)] — 1.0 for a
    perfectly even allocation, [1/n] when one party takes everything.
    For weighted schedulers, {!weighted_report} normalizes each party's
    goodput by its weight before scoring, so weight-proportional service
    also scores 1.0. *)

val jain : float list -> float
(** Jain's fairness index; 1.0 on the empty or all-zero list. *)

type row = {
  id : int;
  value : float;  (** raw goodput (bytes, packets...) *)
  weight : float;
  share : float;  (** value / total value *)
  expected : float;  (** weight / total weight *)
}

type report = {
  rows : row list;
  index : float;  (** Jain's index over weight-normalized goodput *)
  max_rel_err : float;  (** worst [|share - expected| / expected] *)
}

val weighted_report : (int * float * float) list -> report
(** [weighted_report [(id, goodput, weight); ...]] scores how close the
    observed goodput split is to the configured weight split. *)

val summary : report -> string
(** Multi-line human-readable table with a jain/max-err footer. *)
