(* The sink: a null variant whose emits cost one branch, and a recording
   variant that appends typed events and bumps pre-registered counters.
   Hot-path counters live in a flat array indexed by the stat tag so a
   recording bump is an array increment, not a hash lookup. *)

type cat = Tlb | Cache | Bus | Dma | Accel | Sched | Pktio | Ctrl | Fleet | Qos | Fabric

let cat_name = function
  | Tlb -> "tlb"
  | Cache -> "cache"
  | Bus -> "bus"
  | Dma -> "dma"
  | Accel -> "accel"
  | Sched -> "sched"
  | Pktio -> "pktio"
  | Ctrl -> "ctrl"
  | Fleet -> "fleet"
  | Qos -> "qos"
  | Fabric -> "fabric"

type phase = Span_begin | Span_end | Instant

type event = {
  ts : int;
  pid : int;
  track : int;
  phase : phase;
  cat : cat;
  name : string;
  arg : int;
}

type stat =
  | Tlb_hit
  | Tlb_miss
  | Cache_hit
  | Cache_miss
  | Cache_evict
  | Cache_fill
  | Bus_grant
  | Bus_stall
  | Dma_start
  | Dma_complete
  | Dma_fault
  | Accel_dispatch
  | Accel_retire
  | Sched_switch
  | Pktio_rx
  | Pktio_tx
  | Pktio_drop
  | Vf_tx
  | Vf_rx
  | Vf_drop
  | Vf_doorbell
  | Qos_grant
  | Qos_throttle
  | Qos_borrow
  | Slo_violation
  | Ddos_syn_challenge
  | Ddos_admit
  | Ddos_attack_drop
  | Ddos_benign_drop
  | Ddos_goodput_pkt
  | Fabric_tx
  | Fabric_rx
  | Fabric_mac_fail
  | Fabric_replay_drop
  | Fabric_stale_drop
  | Fabric_hop
  | Fabric_handshake
  | Fabric_failover

let stat_index = function
  | Tlb_hit -> 0
  | Tlb_miss -> 1
  | Cache_hit -> 2
  | Cache_miss -> 3
  | Cache_evict -> 4
  | Cache_fill -> 5
  | Bus_grant -> 6
  | Bus_stall -> 7
  | Dma_start -> 8
  | Dma_complete -> 9
  | Dma_fault -> 10
  | Accel_dispatch -> 11
  | Accel_retire -> 12
  | Sched_switch -> 13
  | Pktio_rx -> 14
  | Pktio_tx -> 15
  | Pktio_drop -> 16
  | Vf_tx -> 17
  | Vf_rx -> 18
  | Vf_drop -> 19
  | Vf_doorbell -> 20
  | Qos_grant -> 21
  | Qos_throttle -> 22
  | Qos_borrow -> 23
  | Slo_violation -> 24
  | Ddos_syn_challenge -> 25
  | Ddos_admit -> 26
  | Ddos_attack_drop -> 27
  | Ddos_benign_drop -> 28
  | Ddos_goodput_pkt -> 29
  | Fabric_tx -> 30
  | Fabric_rx -> 31
  | Fabric_mac_fail -> 32
  | Fabric_replay_drop -> 33
  | Fabric_stale_drop -> 34
  | Fabric_hop -> 35
  | Fabric_handshake -> 36
  | Fabric_failover -> 37

let n_stats = 38

let stat_name = function
  | Tlb_hit -> "snic_tlb_hit_total"
  | Tlb_miss -> "snic_tlb_miss_total"
  | Cache_hit -> "snic_cache_hit_total"
  | Cache_miss -> "snic_cache_miss_total"
  | Cache_evict -> "snic_cache_evict_total"
  | Cache_fill -> "snic_cache_fill_total"
  | Bus_grant -> "snic_bus_grant_total"
  | Bus_stall -> "snic_bus_stall_total"
  | Dma_start -> "snic_dma_start_total"
  | Dma_complete -> "snic_dma_complete_total"
  | Dma_fault -> "snic_dma_fault_total"
  | Accel_dispatch -> "snic_accel_dispatch_total"
  | Accel_retire -> "snic_accel_retire_total"
  | Sched_switch -> "snic_sched_quantum_switch_total"
  | Pktio_rx -> "snic_pktio_rx_total"
  | Pktio_tx -> "snic_pktio_tx_total"
  | Pktio_drop -> "snic_pktio_drop_total"
  | Vf_tx -> "snic_vf_tx_total"
  | Vf_rx -> "snic_vf_rx_total"
  | Vf_drop -> "snic_vf_drop_total"
  | Vf_doorbell -> "snic_vf_doorbell_total"
  | Qos_grant -> "snic_qos_grant_total"
  | Qos_throttle -> "snic_qos_throttle_total"
  | Qos_borrow -> "snic_qos_borrow_total"
  | Slo_violation -> "snic_qos_slo_violation_total"
  | Ddos_syn_challenge -> "snic_ddos_syn_challenge_total"
  | Ddos_admit -> "snic_ddos_admit_total"
  | Ddos_attack_drop -> "snic_ddos_attack_drop_total"
  | Ddos_benign_drop -> "snic_ddos_benign_drop_total"
  | Ddos_goodput_pkt -> "snic_ddos_goodput_pkt_total"
  | Fabric_tx -> "snic_fabric_tx_total"
  | Fabric_rx -> "snic_fabric_rx_total"
  | Fabric_mac_fail -> "snic_fabric_mac_fail_total"
  | Fabric_replay_drop -> "snic_fabric_replay_drop_total"
  | Fabric_stale_drop -> "snic_fabric_stale_drop_total"
  | Fabric_hop -> "snic_fabric_hop_total"
  | Fabric_handshake -> "snic_fabric_handshake_total"
  | Fabric_failover -> "snic_fabric_failover_total"

let all_stats =
  [
    Tlb_hit; Tlb_miss; Cache_hit; Cache_miss; Cache_evict; Cache_fill; Bus_grant; Bus_stall;
    Dma_start; Dma_complete; Dma_fault; Accel_dispatch; Accel_retire; Sched_switch; Pktio_rx;
    Pktio_tx; Pktio_drop; Vf_tx; Vf_rx; Vf_drop; Vf_doorbell; Qos_grant; Qos_throttle; Qos_borrow;
    Slo_violation; Ddos_syn_challenge; Ddos_admit; Ddos_attack_drop; Ddos_benign_drop; Ddos_goodput_pkt;
    Fabric_tx; Fabric_rx; Fabric_mac_fail; Fabric_replay_drop; Fabric_stale_drop; Fabric_hop;
    Fabric_handshake; Fabric_failover;
  ]

type recorder = {
  mutable events : event list; (* newest first; reversed on export *)
  mutable n_events : int;
  mutable next_seq : int;
  reg : Metrics.registry;
  stats : Metrics.counter array; (* indexed by stat_index *)
  spans_begun : Metrics.counter;
  spans_ended : Metrics.counter;
  instants : Metrics.counter;
  tracks : (int * int, string) Hashtbl.t;
  procs : (int, string) Hashtbl.t;
}

type sink = Null | Rec of { r : recorder; pid : int }

let null = Null

let create () =
  let reg = Metrics.create_registry () in
  let stats = Array.make n_stats (Metrics.counter reg (stat_name Tlb_hit)) in
  List.iter (fun s -> stats.(stat_index s) <- Metrics.counter reg (stat_name s)) all_stats;
  Rec
    {
      r =
        {
          events = [];
          n_events = 0;
          next_seq = 0;
          reg;
          stats;
          spans_begun = Metrics.counter reg "obs_spans_begun_total";
          spans_ended = Metrics.counter reg "obs_spans_ended_total";
          instants = Metrics.counter reg "obs_instants_total";
          tracks = Hashtbl.create 32;
          procs = Hashtbl.create 8;
        };
      pid = 0;
    }

let is_null = function Null -> true | Rec _ -> false

let for_process t ~pid = match t with Null -> Null | Rec { r; _ } -> Rec { r; pid }

let pid = function Null -> 0 | Rec { pid; _ } -> pid

let registry = function Null -> None | Rec { r; _ } -> Some r.reg

let events = function Null -> [] | Rec { r; _ } -> List.rev r.events

let seq = function
  | Null -> 0
  | Rec { r; _ } ->
    let s = r.next_seq in
    r.next_seq <- s + 1;
    s

let count t stat =
  match t with Null -> () | Rec { r; _ } -> Metrics.incr r.stats.(stat_index stat)

let count_n t stat n =
  match t with Null -> () | Rec { r; _ } -> Metrics.add r.stats.(stat_index stat) n

let push r ev =
  r.events <- ev :: r.events;
  r.n_events <- r.n_events + 1

let span_begin t ~ts ~track cat name ~arg =
  match t with
  | Null -> ()
  | Rec { r; pid } ->
    Metrics.incr r.spans_begun;
    push r { ts; pid; track; phase = Span_begin; cat; name; arg }

let span_end t ~ts ~track cat name ~arg =
  match t with
  | Null -> ()
  | Rec { r; pid } ->
    Metrics.incr r.spans_ended;
    push r { ts; pid; track; phase = Span_end; cat; name; arg }

let instant t ~ts ~track cat name ~arg =
  match t with
  | Null -> ()
  | Rec { r; pid } ->
    Metrics.incr r.instants;
    push r { ts; pid; track; phase = Instant; cat; name; arg }

let observe t name v =
  match t with Null -> () | Rec { r; _ } -> Metrics.observe (Metrics.histogram r.reg name) v

let name_track t ~track name =
  match t with Null -> () | Rec { r; pid } -> Hashtbl.replace r.tracks (pid, track) name

let name_process t ~pid name =
  match t with Null -> () | Rec { r; _ } -> Hashtbl.replace r.procs pid name

let track_names = function
  | Null -> []
  | Rec { r; _ } ->
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) r.tracks []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

let process_names = function
  | Null -> []
  | Rec { r; _ } ->
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) r.procs []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

let span_count = function Null -> 0 | Rec { r; _ } -> Metrics.value r.spans_begun
