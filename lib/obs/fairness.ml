(* Jain's fairness index and weighted goodput-share reports.

   OSMOSIS frames multi-tenant SmartNIC fairness as per-tenant shares of
   the shared datapath; the standard scalar for "how equal is this
   allocation" is Jain's index (sum x)^2 / (n * sum x^2), which is 1 for
   a perfectly even split and 1/n when one party takes everything.  For
   weighted schedulers we normalize each party's goodput by its weight
   first, so a perfectly weight-proportional allocation also scores 1. *)

let jain = function
  | [] -> 1.
  | xs ->
    let n = float_of_int (List.length xs) in
    let s = List.fold_left ( +. ) 0. xs in
    let s2 = List.fold_left (fun a x -> a +. (x *. x)) 0. xs in
    if s2 <= 0. then 1. else s *. s /. (n *. s2)

type row = {
  id : int;
  value : float; (* raw goodput (bytes, packets...) *)
  weight : float;
  share : float; (* value / total value *)
  expected : float; (* weight / total weight *)
}

type report = {
  rows : row list;
  index : float; (* Jain's index over weight-normalized goodput *)
  max_rel_err : float; (* worst |share - expected| / expected *)
}

let weighted_report entries =
  let vsum = List.fold_left (fun a (_, v, _) -> a +. v) 0. entries in
  let wsum = List.fold_left (fun a (_, _, w) -> a +. w) 0. entries in
  let rows =
    List.map
      (fun (id, value, weight) ->
        {
          id;
          value;
          weight;
          share = (if vsum > 0. then value /. vsum else 0.);
          expected = (if wsum > 0. then weight /. wsum else 0.);
        })
      entries
  in
  let index = jain (List.map (fun (_, v, w) -> if w > 0. then v /. w else 0.) entries) in
  let max_rel_err =
    List.fold_left
      (fun acc r -> if r.expected > 0. then Float.max acc (Float.abs (r.share -. r.expected) /. r.expected) else acc)
      0. rows
  in
  { rows; index; max_rel_err }

(* Latency fairness: latency is lower-is-better, so we score the
   *service rate* 1/p99 — equal tail latencies give index 1, one tenant
   stuck behind a noisy neighbor drags it toward 1/n.  The weighted
   variant expects a weight-w tenant to see a tail ~w times shorter
   (gap ∝ 1/weight under weighted round-robin), i.e. rate/weight equal
   across tenants — exactly weighted_report over (id, 1/p99, weight). *)

let inv_latency p = if p > 0. then 1. /. p else 0.
let latency_jain p99s = jain (List.map inv_latency p99s)

let latency_weighted_report entries =
  weighted_report (List.map (fun (id, p99, w) -> (id, inv_latency p99, w)) entries)

let summary r =
  let b = Buffer.create 256 in
  Buffer.add_string b "  id   weight      goodput    share  expected\n";
  List.iter
    (fun row ->
      Buffer.add_string b
        (Printf.sprintf "%4d %8g %12.0f %8.4f %9.4f\n" row.id row.weight row.value row.share
           row.expected))
    r.rows;
  Buffer.add_string b
    (Printf.sprintf "  jain=%.4f max-rel-err=%.2f%% (%d parties)\n" r.index (100. *. r.max_rel_err)
       (List.length r.rows));
  Buffer.contents b
