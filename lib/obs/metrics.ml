(* Counters and fixed-bucket histograms behind a name-keyed registry.
   Registration is idempotent so independent subsystems (telemetry,
   supervisor, device sinks) can share one registry without coordinating;
   every export sorts by name so output is deterministic. *)

type counter = { c_name : string; c_help : string; mutable count : int }

type histogram = {
  h_name : string;
  h_help : string;
  bounds : float array; (* strictly increasing finite upper bounds *)
  buckets : int array; (* length = Array.length bounds + 1; last is +Inf *)
  mutable sum : float;
  mutable n : int;
}

type metric = C of counter | H of histogram

type registry = { tbl : (string, metric) Hashtbl.t }

let create_registry () = { tbl = Hashtbl.create 64 }

let counter ?(help = "") reg name =
  match Hashtbl.find_opt reg.tbl name with
  | Some (C c) -> c
  | Some (H _) -> invalid_arg ("Metrics.counter: " ^ name ^ " is registered as a histogram")
  | None ->
    let c = { c_name = name; c_help = help; count = 0 } in
    Hashtbl.add reg.tbl name (C c);
    c

let incr c = c.count <- c.count + 1

let add c n =
  if n < 0 then invalid_arg ("Metrics.add: counter " ^ c.c_name ^ " is monotonic");
  c.count <- c.count + n

let value c = c.count

let default_buckets = [| 0.25; 0.5; 1.; 2.5; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1000.; 2500.; 5000. |]

let histogram ?(help = "") ?(buckets = default_buckets) reg name =
  match Hashtbl.find_opt reg.tbl name with
  | Some (H h) -> h
  | Some (C _) -> invalid_arg ("Metrics.histogram: " ^ name ^ " is registered as a counter")
  | None ->
    let k = Array.length buckets in
    for i = 1 to k - 1 do
      if buckets.(i) <= buckets.(i - 1) then
        invalid_arg ("Metrics.histogram: non-increasing buckets for " ^ name)
    done;
    if k = 0 then invalid_arg ("Metrics.histogram: empty bucket ladder for " ^ name);
    let h =
      {
        h_name = name;
        h_help = help;
        bounds = Array.copy buckets;
        buckets = Array.make (k + 1) 0;
        sum = 0.;
        n = 0;
      }
    in
    Hashtbl.add reg.tbl name (H h);
    h

let observe h v =
  h.sum <- h.sum +. v;
  h.n <- h.n + 1;
  let k = Array.length h.bounds in
  let rec slot i = if i >= k then k else if v <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.buckets.(i) <- h.buckets.(i) + 1

let hist_count h = h.n
let hist_sum h = h.sum

let clamp01 q = if q < 0. then 0. else if q > 1. then 1. else q

(* Prometheus-style estimate: walk the cumulative bucket counts to the
   target rank, then interpolate linearly inside that bucket.  The first
   bucket's lower edge is 0 and the overflow bucket clamps to the last
   finite bound, exactly as promhistogram_quantile does. *)
let quantile h q =
  if h.n < 2 then None
  else begin
    let q = clamp01 q in
    let target = q *. float_of_int h.n in
    let k = Array.length h.bounds in
    let rec walk i cum =
      let cum' = cum + h.buckets.(i) in
      if float_of_int cum' >= target || i = k then (i, cum, cum')
      else walk (i + 1) cum'
    in
    let i, below, upto = walk 0 0 in
    if i >= k then Some h.bounds.(k - 1)
    else begin
      let lower = if i = 0 then 0. else h.bounds.(i - 1) in
      let upper = h.bounds.(i) in
      let in_bucket = upto - below in
      if in_bucket = 0 then Some upper
      else
        Some (lower +. ((upper -. lower) *. (target -. float_of_int below) /. float_of_int in_bucket))
    end
  end

(* Exact sample quantile: linear interpolation at rank q*(n-1).  The one
   convention shared by bench --json and the chaos report. *)
let quantile_of_samples samples q =
  let n = List.length samples in
  if n < 2 then None
  else begin
    let a = Array.of_list samples in
    Array.sort compare a;
    let q = clamp01 q in
    let rank = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let lo = if lo > n - 1 then n - 1 else lo in
    let hi = if lo + 1 < n then lo + 1 else lo in
    let frac = rank -. float_of_int lo in
    Some (a.(lo) +. ((a.(hi) -. a.(lo)) *. frac))
  end

(* The fold visits in hash order, which varies across OCaml versions and
   hash seeds — and this listing escapes into artifacts (the Prometheus
   page, bench JSON), so it is sorted by name before anything renders it. *)
let sorted_metrics reg =
  let all = Hashtbl.fold (fun name m acc -> (name, m) :: acc) reg.tbl [] in
  List.sort (fun (a, _) (b, _) -> String.compare a b) all

let counters reg =
  List.filter_map (function name, C c -> Some (name, c.count) | _, H _ -> None) (sorted_metrics reg)

(* Per-domain merge: each shard of a parallel run records into its own
   registry (recording sinks are single-domain), and the coordinator
   folds them into one snapshot after the join.  Sources are visited in
   name order and summation commutes, so the merged registry is
   independent of both hash order and shard completion order. *)
let merge_into ~into src =
  List.iter
    (fun (name, m) ->
      match m with
      | C c ->
        let dst = counter ~help:c.c_help into name in
        dst.count <- dst.count + c.count
      | H h ->
        let dst = histogram ~help:h.h_help ~buckets:h.bounds into name in
        if dst.bounds <> h.bounds then
          invalid_arg ("Metrics.merge_into: bucket ladders differ for " ^ name);
        Array.iteri (fun i n -> dst.buckets.(i) <- dst.buckets.(i) + n) h.buckets;
        dst.sum <- dst.sum +. h.sum;
        dst.n <- dst.n + h.n)
    (sorted_metrics src)

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let prometheus reg =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, m) ->
      match m with
      | C c ->
        if c.c_help <> "" then Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name c.c_help);
        Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" name);
        Buffer.add_string b (Printf.sprintf "%s %d\n" name c.count)
      | H h ->
        if h.h_help <> "" then Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name h.h_help);
        Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" name);
        let cum = ref 0 in
        Array.iteri
          (fun i bound ->
            cum := !cum + h.buckets.(i);
            Buffer.add_string b
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name (float_str bound) !cum))
          h.bounds;
        Buffer.add_string b
          (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name h.n);
        Buffer.add_string b (Printf.sprintf "%s_sum %s\n" name (float_str h.sum));
        Buffer.add_string b (Printf.sprintf "%s_count %d\n" name h.n))
    (sorted_metrics reg);
  Buffer.contents b
