(* Chrome trace_event JSON ("traceEvents" object flavour).  Everything is
   emitted in a deterministic order — metadata sorted by (pid, tid),
   events stable-sorted by ts — so a seeded run exports byte-identical
   bytes, which the determinism tests diff directly. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let phase_str = function
  | Sink.Span_begin -> "B"
  | Sink.Span_end -> "E"
  | Sink.Instant -> "i"

let event_row b first (ev : Sink.event) =
  if not !first then Buffer.add_string b ",\n";
  first := false;
  let extra = match ev.Sink.phase with Sink.Instant -> {|,"s":"t"|} | _ -> "" in
  Buffer.add_string b
    (Printf.sprintf
       {|{"name":"%s","cat":"%s","ph":"%s","ts":%d,"pid":%d,"tid":%d%s,"args":{"v":%d}}|}
       (escape ev.Sink.name) (Sink.cat_name ev.Sink.cat) (phase_str ev.Sink.phase) ev.Sink.ts
       ev.Sink.pid ev.Sink.track extra ev.Sink.arg)

let meta_row b first ~name ~pid ~tid ~value =
  if not !first then Buffer.add_string b ",\n";
  first := false;
  let tid_field = match tid with None -> "" | Some t -> Printf.sprintf {|,"tid":%d|} t in
  Buffer.add_string b
    (Printf.sprintf {|{"name":"%s","ph":"M","pid":%d%s,"args":{"name":"%s"}}|} name pid tid_field
       (escape value))

let to_json sink =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[\n";
  let first = ref true in
  List.iter
    (fun (pid, name) -> meta_row b first ~name:"process_name" ~pid ~tid:None ~value:name)
    (Sink.process_names sink);
  List.iter
    (fun ((pid, tid), name) -> meta_row b first ~name:"thread_name" ~pid ~tid:(Some tid) ~value:name)
    (Sink.track_names sink);
  let events = Sink.events sink in
  let sorted = List.stable_sort (fun a b -> compare a.Sink.ts b.Sink.ts) events in
  List.iter (fun ev -> event_row b first ev) sorted;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ns\"}\n";
  Buffer.contents b
