(** Chrome [trace_event] JSON exporter.

    Produces the JSON-object flavour of the format,
    [{"traceEvents": [...], "displayTimeUnit": "ns"}], loadable in
    Perfetto ([ui.perfetto.dev]) and [chrome://tracing].  One [ts] unit
    is one simulated cycle (or one sequence tick for clockless devices).
    Output is a deterministic function of the recorded events: events are
    sorted stably by timestamp (emission order breaks ties) and metadata
    rows by pid/tid, so equal seeds export byte-identical traces. *)

val to_json : Sink.sink -> string
(** Render every recorded event (plus [process_name] / [thread_name]
    metadata rows) as a Chrome trace_event JSON document.  The null sink
    renders an empty trace. *)
