(** Metric registry: monotonic counters and fixed-bucket histograms.

    A {!registry} is a named bag of metrics.  Registration is idempotent:
    asking twice for the same name returns the same metric, so independent
    subsystems can share a registry without coordinating.  Exports are
    sorted by metric name, making the output a deterministic function of
    the recorded values. *)

type registry
(** A mutable collection of named metrics. *)

type counter
(** A monotonically increasing integer. *)

type histogram
(** A fixed-bucket histogram over [float] observations. *)

val create_registry : unit -> registry
(** A fresh, empty registry. *)

val counter : ?help:string -> registry -> string -> counter
(** [counter reg name] registers (or retrieves) the counter [name].
    Raises [Invalid_argument] if [name] is already a histogram. *)

val incr : counter -> unit
(** Add 1. *)

val add : counter -> int -> unit
(** Add [n] (must be non-negative; counters are monotonic). *)

val value : counter -> int
(** Current count. *)

val default_buckets : float array
(** Upper bounds used when [?buckets] is omitted: a log-ish ladder from
    0.25 to 5000, suited to millisecond latencies. *)

val histogram : ?help:string -> ?buckets:float array -> registry -> string -> histogram
(** [histogram reg name] registers (or retrieves) the histogram [name].
    [buckets] are strictly increasing finite upper bounds; a [+Inf]
    overflow bucket is always appended.  Raises [Invalid_argument] if
    [name] is already a counter, or on a non-increasing bucket ladder. *)

val observe : histogram -> float -> unit
(** Record one observation. *)

val hist_count : histogram -> int
(** Number of observations. *)

val hist_sum : histogram -> float
(** Sum of observations. *)

val quantile : histogram -> float -> float option
(** [quantile h q] estimates the [q]-quantile ([0. <= q <= 1.]) with
    Prometheus-style linear interpolation inside the bucket containing
    the target rank (first bucket's lower edge is 0; the overflow bucket
    clamps to the last finite bound).  [None] when fewer than 2
    observations exist — a single sample has no spread, and an empty
    histogram has no p99. *)

val quantile_of_samples : float list -> float -> float option
(** [quantile_of_samples xs q] is the exact [q]-quantile of [xs]: sort,
    then linearly interpolate at rank [q * (n - 1)].  [None] when
    [List.length xs < 2].  This is the single quantile convention shared
    by the bench [--json] dump and the chaos report. *)

val counters : registry -> (string * int) list
(** All counters as [(name, value)], sorted by name. *)

val merge_into : into:registry -> registry -> unit
(** [merge_into ~into src] folds every metric of [src] into [into]:
    counters add their counts; histograms add bucket-wise (the bucket
    ladders must be identical) along with their sums and observation
    counts.  Metrics absent from [into] are registered first, so merging
    shard registries into a fresh registry yields the union.  Merging is
    commutative and associative over disjoint sources, which is what
    lets a parallel run's per-domain registries collapse into one
    snapshot independent of completion order (see PARALLELISM.md).
    Raises [Invalid_argument] if a name is a counter in one registry and
    a histogram in the other, or if two histograms with the same name
    have different bucket ladders. *)

val prometheus : registry -> string
(** Prometheus text-exposition dump of every metric, sorted by name.
    Counters render as [name value]; histograms as cumulative
    [name_bucket{le="..."}] lines plus [name_sum] and [name_count]. *)
