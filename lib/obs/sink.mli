(** Trace sink: typed, cycle-stamped events plus a per-sink metric registry.

    A sink is either {!null} — every emit is a single branch, no
    allocation, no recording — or a recording sink from {!create}.
    Devices hold a sink and call {!count} / {!span_begin} / {!span_end} /
    {!instant} unconditionally; with the null sink the hot path pays one
    pattern match and nothing else, which is what lets instrumentation
    live permanently in [lib/nicsim] device code.

    Tracks: events carry a [(pid, track)] pair mapping onto Chrome
    trace_event's (process, thread).  Each serially-executing unit (a bus
    client, an accelerator thread, a DMA bank, a core's TLB) gets its own
    track so span begin/end pairs never overlap within a track.  The
    fleet layer gives each NIC its own [pid] via {!for_process}.

    Timestamps are simulated cycles where the device has a cycle clock
    (cache, bus, accelerators) and a deterministic global sequence number
    ({!seq}) where it does not (DMA, control plane) — never wall-clock,
    so a seeded run exports byte-identical traces. *)

(** Event category — one per instrumented subsystem. *)
type cat =
  | Tlb
  | Cache
  | Bus
  | Dma
  | Accel
  | Sched
  | Pktio
  | Ctrl  (** control-plane API calls: nf_create / nf_destroy *)
  | Fleet  (** orchestrator / supervisor actions *)
  | Qos  (** per-tenant credit arbiter: grants, throttles, SLO *)
  | Fabric  (** inter-NIC channels: hops, handshakes, failovers *)

val cat_name : cat -> string
(** Lower-case category label used in exporters (e.g. ["tlb"]). *)

(** Chrome trace_event phase of an {!event}. *)
type phase =
  | Span_begin  (** ["B"] — a duration span opens on this track *)
  | Span_end  (** ["E"] — the innermost open span on this track closes *)
  | Instant  (** ["i"] — a point event *)

type event = {
  ts : int;  (** cycles, or a {!seq} number where no device clock exists *)
  pid : int;  (** process id: NIC id in a fleet, 0 standalone *)
  track : int;  (** thread id: one serially-executing unit *)
  phase : phase;
  cat : cat;
  name : string;  (** static label, e.g. ["bus_grant"] *)
  arg : int;  (** one free integer argument (bytes, cycles, tenant id...) *)
}

(** Pre-registered hot-path counters.  Bumping one is an array increment —
    no hashing, no allocation — so even the TLB hit path can count. *)
type stat =
  | Tlb_hit
  | Tlb_miss
  | Cache_hit
  | Cache_miss
  | Cache_evict
  | Cache_fill
  | Bus_grant
  | Bus_stall
  | Dma_start
  | Dma_complete
  | Dma_fault
  | Accel_dispatch
  | Accel_retire
  | Sched_switch
  | Pktio_rx
  | Pktio_tx
  | Pktio_drop
  | Vf_tx
  | Vf_rx
  | Vf_drop
  | Vf_doorbell
  | Qos_grant
  | Qos_throttle
  | Qos_borrow
  | Slo_violation
  | Ddos_syn_challenge
  | Ddos_admit
  | Ddos_attack_drop
  | Ddos_benign_drop
  | Ddos_goodput_pkt
  | Fabric_tx
  | Fabric_rx
  | Fabric_mac_fail
  | Fabric_replay_drop
  | Fabric_stale_drop
  | Fabric_hop
  | Fabric_handshake
  | Fabric_failover

val stat_name : stat -> string
(** Registry name of a hot-path counter, e.g. ["snic_tlb_hit_total"]. *)

type sink
(** Either the null sink or a recording sink. *)

val null : sink
(** The no-op sink: every emit returns immediately after one branch. *)

val create : unit -> sink
(** A fresh recording sink with its own event buffer and registry. *)

val is_null : sink -> bool

val for_process : sink -> pid:int -> sink
(** Same recorder, different [pid]: how the fleet layer gives each NIC
    its own process lane in the exported trace.  [for_process null] is
    [null]. *)

val pid : sink -> int
(** The pid stamped on events emitted through this sink (0 for null). *)

val registry : sink -> Metrics.registry option
(** The sink's metric registry; [None] for the null sink. *)

val events : sink -> event list
(** Recorded events, in emission order.  Empty for the null sink. *)

val seq : sink -> int
(** Next value of the deterministic global sequence, for timestamping
    events from devices without a cycle clock.  Monotonic per recorder;
    always [0] on the null sink. *)

val count : sink -> stat -> unit
(** Bump a hot-path counter.  Allocation-free on both paths. *)

val count_n : sink -> stat -> int -> unit
(** Bump a hot-path counter by [n]. *)

val span_begin : sink -> ts:int -> track:int -> cat -> string -> arg:int -> unit
(** Open a span on [(pid, track)] at [ts].  Every [span_begin] must be
    matched by a {!span_end} on the same track at a [ts' >= ts]. *)

val span_end : sink -> ts:int -> track:int -> cat -> string -> arg:int -> unit
(** Close the innermost open span on [(pid, track)]. *)

val instant : sink -> ts:int -> track:int -> cat -> string -> arg:int -> unit
(** A point event. *)

val observe : sink -> string -> float -> unit
(** Record an observation into the named histogram of the sink's registry
    (created on first use with {!Metrics.default_buckets}).  No-op on the
    null sink.  Not for per-cycle hot paths — it does a name lookup. *)

val name_track : sink -> track:int -> string -> unit
(** Attach a human-readable name to [(pid, track)], exported as Chrome
    [thread_name] metadata.  Last writer wins. *)

val name_process : sink -> pid:int -> string -> unit
(** Attach a human-readable name to [pid], exported as Chrome
    [process_name] metadata. *)

val track_names : sink -> ((int * int) * string) list
(** All [(pid, track) -> name] bindings, sorted. *)

val process_names : sink -> (int * string) list
(** All [pid -> name] bindings, sorted. *)

val span_count : sink -> int
(** Number of [Span_begin] events recorded (equals the registry counter
    [obs_spans_begun_total]). *)
