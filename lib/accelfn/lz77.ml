let window_size = 65_535
let max_match = 131
let min_match = 4

(* Hash of the 4 bytes at [i]; chains of previous positions with the
   same hash bound the match search. *)
let hash_bits = 15
let hash_size = 1 lsl hash_bits

let hash4 s i =
  let b k = Char.code (String.unsafe_get s (i + k)) in
  (((b 0 lsl 12) lxor (b 1 lsl 8) lxor (b 2 lsl 4) lxor b 3) * 0x9E37) lsr 4 land (hash_size - 1)

let compress s =
  let n = String.length s in
  let out = Buffer.create (n / 2) in
  let head = Array.make hash_size (-1) in
  let prev = Array.make (max n 1) (-1) in
  let lit_start = ref 0 in
  let flush_literals upto =
    (* Emit pending literals in runs of <= 128. *)
    let i = ref !lit_start in
    while !i < upto do
      let run = min 128 (upto - !i) in
      Buffer.add_char out (Char.chr (run - 1));
      Buffer.add_substring out s !i run;
      i := !i + run
    done;
    lit_start := upto
  in
  let insert i =
    if i + min_match <= n then begin
      let h = hash4 s i in
      prev.(i) <- head.(h);
      head.(h) <- i
    end
  in
  let match_len a b limit =
    let k = ref 0 in
    while !k < limit && String.unsafe_get s (a + !k) = String.unsafe_get s (b + !k) do
      incr k
    done;
    !k
  in
  let i = ref 0 in
  while !i < n do
    let best_len = ref 0 and best_dist = ref 0 in
    if !i + min_match <= n then begin
      let limit = min max_match (n - !i) in
      let cand = ref head.(hash4 s !i) in
      let tries = ref 32 in
      while !cand >= 0 && !tries > 0 do
        if !i - !cand <= window_size then begin
          let len = match_len !cand !i limit in
          if len > !best_len then begin
            best_len := len;
            best_dist := !i - !cand
          end;
          decr tries;
          cand := prev.(!cand)
        end
        else begin
          (* Beyond the window: older entries are older still. *)
          cand := -1
        end
      done
    end;
    if !best_len >= min_match then begin
      flush_literals !i;
      Buffer.add_char out (Char.chr (0x80 lor (!best_len - min_match)));
      Buffer.add_char out (Char.chr (!best_dist land 0xff));
      Buffer.add_char out (Char.chr ((!best_dist lsr 8) land 0xff));
      (* Index every covered position so later matches can start inside
         this one. *)
      for k = 0 to !best_len - 1 do
        insert (!i + k)
      done;
      i := !i + !best_len;
      lit_start := !i
    end
    else begin
      insert !i;
      incr i
    end
  done;
  flush_literals n;
  Buffer.contents out

let decompress s =
  let n = String.length s in
  let out = Buffer.create (2 * n) in
  let i = ref 0 in
  let need k = if !i + k > n then invalid_arg "Lz77.decompress: truncated token" in
  while !i < n do
    let tok = Char.code s.[!i] in
    incr i;
    if tok < 0x80 then begin
      let run = tok + 1 in
      need run;
      Buffer.add_substring out s !i run;
      i := !i + run
    end
    else begin
      need 2;
      let len = (tok land 0x7f) + min_match in
      let dist = Char.code s.[!i] lor (Char.code s.[!i + 1] lsl 8) in
      i := !i + 2;
      if dist = 0 || dist > Buffer.length out then invalid_arg "Lz77.decompress: bad distance";
      (* Overlapping copies are the point of LZ77: copy byte by byte. *)
      let start = Buffer.length out - dist in
      for k = 0 to len - 1 do
        Buffer.add_char out (Buffer.nth out (start + k))
      done
    end
  done;
  Buffer.contents out

let ratio s =
  if String.length s = 0 then 1.0
  else float_of_int (String.length (compress s)) /. float_of_int (String.length s)
