let generator = 2
let poly = 0x11D

(* exp table over two periods so mul can index without a mod. *)
let exp_table, log_table =
  let e = Array.make 512 0 and l = Array.make 256 0 in
  let x = ref 1 in
  for i = 0 to 254 do
    e.(i) <- !x;
    l.(!x) <- i;
    x := !x lsl 1;
    if !x land 0x100 <> 0 then x := !x lxor poly
  done;
  for i = 255 to 511 do
    e.(i) <- e.(i - 255)
  done;
  (e, l)

let check a = if a < 0 || a > 255 then invalid_arg "Gf256: value out of range"

let add a b =
  check a;
  check b;
  a lxor b

let mul a b =
  check a;
  check b;
  if a = 0 || b = 0 then 0 else exp_table.(log_table.(a) + log_table.(b))

let inv a =
  check a;
  if a = 0 then raise Division_by_zero else exp_table.(255 - log_table.(a))

let div a b = mul a (inv b)

let pow a k =
  check a;
  if a = 0 then (if k = 0 then 1 else 0)
  else begin
    let k = ((k mod 255) + 255) mod 255 in
    exp_table.(log_table.(a) * k mod 255)
  end

let exp k = pow generator k
