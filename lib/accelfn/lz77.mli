(** The ZIP accelerator's functional model: an LZ77-family compressor
    with a 64 KB sliding window and hash-chain match search.

    Token stream format (self-delimiting, byte-oriented):
    - [0x00..0x7F]: a literal run of (byte + 1) bytes follows;
    - [0x80..0xFF]: a back-reference; low 7 bits encode (length - 4),
      i.e. lengths 4..131, followed by a 2-byte little-endian distance
      (1..65535).

    [decompress (compress s) = s] for every string. *)

val compress : string -> string

(** [decompress s] raises [Invalid_argument] on malformed input
    (truncated tokens, distances pointing before the start). *)
val decompress : string -> string

(** [ratio s] is [compressed length / original length] (1.0 for empty). *)
val ratio : string -> float

val window_size : int
val max_match : int
val min_match : int
