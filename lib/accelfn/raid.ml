type stripe = { data : string array; p : string; q : string }

let xor_into dst src = Bytes.iteri (fun i c -> Bytes.set dst i (Char.chr (Char.code c lxor Char.code (Bytes.get dst i)))) (Bytes.of_string src)

let encode blocks =
  let k = Array.length blocks in
  if k = 0 then invalid_arg "Raid.encode: empty stripe";
  let len = String.length blocks.(0) in
  Array.iter (fun b -> if String.length b <> len then invalid_arg "Raid.encode: unequal block lengths") blocks;
  let p = Bytes.make len '\000' in
  let q = Bytes.make len '\000' in
  Array.iteri
    (fun i b ->
      xor_into p b;
      let g = Gf256.exp i in
      for j = 0 to len - 1 do
        Bytes.set q j (Char.chr (Char.code (Bytes.get q j) lxor Gf256.mul g (Char.code b.[j])))
      done)
    blocks;
  { data = Array.copy blocks; p = Bytes.to_string p; q = Bytes.to_string q }

let verify s =
  let fresh = encode s.data in
  String.equal fresh.p s.p && String.equal fresh.q s.q

let recover ~data ~p ~q =
  let k = Array.length data in
  if k = 0 then Error "empty stripe"
  else begin
    let missing = ref [] in
    Array.iteri (fun i b -> if b = None then missing := i :: !missing) data;
    let len =
      match (Array.to_list data, p, q) with
      | _, Some s, _ | _, _, Some s -> String.length s
      | blocks, None, None -> begin
        match List.find_opt Option.is_some blocks with
        | Some (Some s) -> String.length s
        | _ -> 0
      end
    in
    let byte b j = Char.code b.[j] in
    match (!missing, p, q) with
    | [], _, _ -> Ok (Array.map Option.get data)
    | [ x ], Some p, _ ->
      (* P-recovery: D_x = P xor (xor of the others). *)
      let out = Bytes.of_string p in
      Array.iteri (fun i b -> if i <> x then xor_into out (Option.get b)) data;
      let d = Array.map (function Some b -> b | None -> Bytes.to_string out) data in
      Ok d
    | [ x ], None, Some q ->
      (* Q-recovery: D_x = (Q xor sum_{i<>x} g^i D_i) / g^x. *)
      let acc = Bytes.of_string q in
      Array.iteri
        (fun i b ->
          if i <> x then begin
            let g = Gf256.exp i in
            let s = Option.get b in
            for j = 0 to len - 1 do
              Bytes.set acc j (Char.chr (Char.code (Bytes.get acc j) lxor Gf256.mul g (byte s j)))
            done
          end)
        data;
      let gx = Gf256.exp x in
      let out = Bytes.init len (fun j -> Char.chr (Gf256.div (Char.code (Bytes.get acc j)) gx)) in
      Ok (Array.map (function Some b -> b | None -> Bytes.to_string out) data)
    | [ y; x ], Some p, Some q ->
      (* Two erasures (x < y after the reverse accumulation):
         A = P xor (others), B = Q xor (weighted others);
         D_x = (B xor g^y*A) / (g^x xor g^y); D_y = A xor D_x. *)
      let a = Bytes.of_string p in
      let b = Bytes.of_string q in
      Array.iteri
        (fun i blk ->
          match blk with
          | Some s when i <> x && i <> y ->
            xor_into a s;
            let g = Gf256.exp i in
            for j = 0 to len - 1 do
              Bytes.set b j (Char.chr (Char.code (Bytes.get b j) lxor Gf256.mul g (byte s j)))
            done
          | _ -> ())
        data;
      let gx = Gf256.exp x and gy = Gf256.exp y in
      let denom = gx lxor gy in
      let dx =
        Bytes.init len (fun j ->
            let aj = Char.code (Bytes.get a j) and bj = Char.code (Bytes.get b j) in
            Char.chr (Gf256.div (bj lxor Gf256.mul gy aj) denom))
      in
      let dy = Bytes.init len (fun j -> Char.chr (Char.code (Bytes.get a j) lxor Char.code (Bytes.get dx j))) in
      Ok
        (Array.mapi
           (fun i blk ->
             match blk with
             | Some s -> s
             | None -> if i = x then Bytes.to_string dx else Bytes.to_string dy)
           data)
    | [ _ ], None, None -> Error "one block lost but both parities unavailable"
    | [ _; _ ], _, _ -> Error "two blocks lost: need both P and Q"
    | _ -> Error "more than two blocks lost: beyond P+Q capability"
  end
