(** The RAID accelerator's functional model: RAID-6-style P+Q parity
    over GF(2^8).

    A stripe of k equal-length data blocks carries two parity blocks:
    P = xor of the blocks, Q = sum of g^i * D_i. Any single lost block is
    recoverable from P (or Q); any two lost data blocks are recoverable
    from P and Q together. *)

type stripe = {
  data : string array; (* k blocks, equal lengths *)
  p : string;
  q : string;
}

(** [encode blocks] computes both parities. All blocks must share one
    length; at least one block. *)
val encode : string array -> stripe

(** [verify s] recomputes the parities. *)
val verify : stripe -> bool

(** [recover ~data ~p ~q] rebuilds the full data array, where [None]
    marks lost blocks ([p]/[q] may be lost too). Fails with a message
    when the erasures exceed the code's capability. *)
val recover : data:string option array -> p:string option -> q:string option -> (string array, string) result
