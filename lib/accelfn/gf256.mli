(** GF(2^8) arithmetic with the AES/RAID-6 polynomial x^8+x^4+x^3+x^2+1
    (0x11D), via log/antilog tables. The RAID accelerator's Q-parity is
    Reed–Solomon coding over this field. *)

val add : int -> int -> int
(** Addition = XOR. *)

val mul : int -> int -> int
val div : int -> int -> int
(** [div a b] raises [Division_by_zero] when [b = 0]. *)

val inv : int -> int
val pow : int -> int -> int

(** The field generator (2). *)
val generator : int

(** [exp k] is generator^k. *)
val exp : int -> int
