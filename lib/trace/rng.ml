type t = { mutable state : int }

(* 62-bit-safe SplitMix64 constants (see Five_tuple.hash for the same
   trick); the generator only needs good equidistribution, not
   cryptographic strength. *)
let gamma = 0x1E3779B97F4A7C15

let create ~seed = { state = (seed * 0x3C79AC492BA7B653) land max_int }

let next_raw t =
  t.state <- (t.state + gamma) land max_int;
  let z = t.state in
  let z = (z lxor (z lsr 30)) * 0x2545F4914F6CDD1D in
  let z = (z lxor (z lsr 27)) * 0x1B873593CC9E2D51 in
  (z lxor (z lsr 31)) land max_int

let bits = next_raw

let split t =
  let s = next_raw t in
  { state = (s * 0x3C79AC492BA7B653) land max_int }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias for large bounds. *)
  let limit = max_int - (max_int mod bound) in
  let rec go () =
    let v = next_raw t in
    if v < limit then v mod bound else go ()
  in
  go ()

let float t = Float.of_int (next_raw t land ((1 lsl 53) - 1)) /. Float.of_int (1 lsl 53)
let bool t = next_raw t land 1 = 1

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
