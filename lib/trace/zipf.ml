type t = { cdf : float array }

let create ~n ~skew =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for k = 0 to n - 1 do
    acc := !acc +. (1.0 /. Float.pow (Float.of_int (k + 1)) skew);
    cdf.(k) <- !acc
  done;
  let total = !acc in
  for k = 0 to n - 1 do
    cdf.(k) <- cdf.(k) /. total
  done;
  { cdf }

let n t = Array.length t.cdf

let sample t rng =
  let u = Rng.float rng in
  (* Binary search for the first rank whose CDF is >= u. *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let probability t k =
  if k < 0 || k >= Array.length t.cdf then invalid_arg "Zipf.probability";
  if k = 0 then t.cdf.(0) else t.cdf.(k) -. t.cdf.(k - 1)
