(** Synthetic flow and packet generation. *)

(** [flows rng ~n] draws [n] distinct TCP/UDP 5-tuples with private
    source addresses and public destinations. *)
val flows : Rng.t -> n:int -> Net.Five_tuple.t array

(** [packet_of_flow ?payload_len rng flow] materializes a packet for
    [flow]; payload defaults to a random length in [16, 1400) filled with
    deterministic bytes. *)
val packet_of_flow : ?payload_len:int -> Rng.t -> Net.Five_tuple.t -> Net.Packet.t

(** Frame sizes (total wire bytes) from the paper's Figure 8:
    64 B, 512 B, 1.5 KB standard Ethernet, 9 KB jumbo. *)
val figure8_frame_sizes : int list

(** [payload_for_frame ~frame_size ~proto] is the payload length that
    yields a [frame_size]-byte wire frame (clamped at 0). *)
val payload_for_frame : frame_size:int -> proto:Net.Packet.proto -> int
