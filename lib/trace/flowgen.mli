(** Synthetic flow and packet generation. *)

(** [flows rng ~n] draws [n] distinct TCP/UDP 5-tuples with private
    source addresses and public destinations.  Distinctness is by
    bounded rejection sampling: after [max_rejects] consecutive
    collisions a tuple is taken from a counter-derived range (dst port
    pinned to a value outside the sampled set) that is disjoint from
    everything sampling can produce, so generation is O(n) even at
    spoofed-storm scale (n >= 10^6). *)
val flows : Rng.t -> n:int -> Net.Five_tuple.t array

(** [packet_of_flow ?payload_len rng flow] materializes a packet for
    [flow]; payload defaults to a random length in [16, 1400) filled with
    deterministic bytes. *)
val packet_of_flow : ?payload_len:int -> Rng.t -> Net.Five_tuple.t -> Net.Packet.t

(** Frame sizes (total wire bytes) from the paper's Figure 8:
    64 B, 512 B, 1.5 KB standard Ethernet, 9 KB jumbo. *)
val figure8_frame_sizes : int list

(** [payload_for_frame ~frame_size ~proto] is the payload length that
    yields a [frame_size]-byte wire frame, clamped so the frame never
    falls below the 64 B Ethernet minimum (a headers-only TCP segment is
    padded, not emitted short). *)
val payload_for_frame : frame_size:int -> proto:Net.Packet.proto -> int
