(** Synthetic packet traces standing in for the paper's CAIDA 2016 and
    ICTF 2010 captures (§5.1): a compact event representation (flow index +
    wire size + timestamp) that experiments can replay without
    materializing full frames. *)

type event = {
  flow : int; (* index into [flows] *)
  size : int; (* wire bytes *)
  time_us : int; (* microseconds since trace start *)
}

type t = {
  flows : Net.Five_tuple.t array;
  events : event array;
}

(** ICTF-like: [n_flows] flows whose popularity is Zipf([skew]), defaults
    matching §5.3 (100,000 flows, skew 1.1). Packet sizes follow a simple
    IMIX mix; events are spread uniformly over [duration_s]. *)
val ictf_like : ?n_flows:int -> ?skew:float -> ?duration_s:float -> seed:int -> packets:int -> unit -> t

(** CAIDA-like: new flows keep arriving for the whole duration (constant
    arrival rate plus Zipf-reuse of old flows), which is what drives the
    Monitor NF's unbounded memory growth (Figure 7). *)
val caida_like : ?flows_per_sec:int -> ?skew:float -> seed:int -> duration_s:float -> packets:int -> unit -> t

(** Number of distinct flows seen in the first [t] microseconds. *)
val distinct_flows_before : t -> int -> int

(** Replay as parsed packets (materialized lazily). [seed] drives
    payload materialization only — the flows and event schedule are fixed
    by the trace (default [0x7ace]). *)
val packets : ?seed:int -> t -> Net.Packet.t Seq.t

val event_count : t -> int
