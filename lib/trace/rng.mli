(** Deterministic SplitMix64-style pseudo-random generator.

    Every experiment in this repository is seeded, so traces, rulesets and
    colocation sweeps reproduce bit-for-bit across runs. *)

type t

val create : seed:int -> t

(** A fresh generator split off deterministically; streams do not overlap
    in practice. *)
val split : t -> t

(** [bits t] draws 62 uniform bits (a non-negative int). *)
val bits : t -> int

(** [int t bound] draws uniformly from [[0, bound)]. Raises on
    [bound <= 0]. *)
val int : t -> int -> int

(** [float t] draws uniformly from [[0, 1)]. *)
val float : t -> float

val bool : t -> bool

(** [pick t arr] draws a uniform element. Raises on empty arrays. *)
val pick : t -> 'a array -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit
