let magic = "SNICTRC1"

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let add_u16 b v =
  add_u8 b v;
  add_u8 b (v lsr 8)

let add_u32 b v =
  add_u16 b v;
  add_u16 b (v lsr 16)

let add_u64 b v =
  add_u32 b v;
  add_u32 b (v lsr 32)

let save path (t : Tracegen.t) =
  let b = Buffer.create (1 lsl 16) in
  Buffer.add_string b magic;
  add_u32 b (Array.length t.Tracegen.flows);
  Array.iter
    (fun (f : Net.Five_tuple.t) ->
      add_u32 b f.src_ip;
      add_u32 b f.dst_ip;
      add_u8 b f.proto;
      add_u16 b f.src_port;
      add_u16 b f.dst_port)
    t.Tracegen.flows;
  add_u32 b (Array.length t.Tracegen.events);
  Array.iter
    (fun (e : Tracegen.event) ->
      add_u32 b e.flow;
      add_u32 b e.size;
      add_u64 b e.time_us)
    t.Tracegen.events;
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Buffer.output_buffer oc b)

(* A tiny cursor-based reader with bounds checks. *)
type cursor = { data : string; mutable pos : int }

exception Bad of string

let need c n = if c.pos + n > String.length c.data then raise (Bad "truncated trace file")

let u8 c =
  need c 1;
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let u16 c =
  let lo = u8 c in
  lo lor (u8 c lsl 8)

let u32 c =
  let lo = u16 c in
  lo lor (u16 c lsl 16)

let u64 c =
  let lo = u32 c in
  lo lor (u32 c lsl 32)

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | data -> begin
    let c = { data; pos = 0 } in
    try
      need c 8;
      if String.sub data 0 8 <> magic then raise (Bad "bad magic");
      c.pos <- 8;
      let n_flows = u32 c in
      if n_flows > 50_000_000 then raise (Bad "implausible flow count");
      let flows =
        Array.init n_flows (fun _ ->
            let src_ip = u32 c in
            let dst_ip = u32 c in
            let proto = u8 c in
            let src_port = u16 c in
            let dst_port = u16 c in
            Net.Five_tuple.make ~src_ip ~dst_ip ~proto ~src_port ~dst_port)
      in
      let n_events = u32 c in
      if n_events > 500_000_000 then raise (Bad "implausible event count");
      let events =
        Array.init n_events (fun _ ->
            let flow = u32 c in
            if flow >= n_flows then raise (Bad "event references unknown flow");
            let size = u32 c in
            let time_us = u64 c in
            { Tracegen.flow; size; time_us })
      in
      if c.pos <> String.length data then raise (Bad "trailing bytes");
      Ok { Tracegen.flows; events }
    with Bad e -> Error e
  end
