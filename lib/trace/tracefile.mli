(** Binary on-disk format for packet traces, so generated workloads can
    be saved once and replayed across runs/tools (a light-weight stand-in
    for the pcap captures the paper replays).

    Layout (all integers little-endian):
    {v
    "SNICTRC1"                      8-byte magic
    u32 flow count
      per flow: u32 src, u32 dst, u8 proto, u16 sport, u16 dport
    u32 event count
      per event: u32 flow index, u32 wire bytes, u64 time_us
    v} *)

val magic : string

val save : string -> Tracegen.t -> unit

(** [load path] validates the magic, bounds and flow indices. *)
val load : string -> (Tracegen.t, string) result
