(* Seeded adversarial traffic: SYN floods, spoofed-source storms,
   elephant/mice mixes and flash crowds.  Generators stream events
   through a callback so millions-of-flows scale never materializes an
   array of packets; everything is a pure function of the Rng, so the
   same seed replays the same attack byte for byte. *)

type kind = Syn | Ack | Data

type event = {
  kind : kind;
  flow : Net.Five_tuple.t;
  benign : bool;
  size : int; (* wire bytes *)
}

let kind_name = function Syn -> "SYN" | Ack -> "ACK" | Data -> "DATA"

(* Every TCP scenario targets one victim service; what varies is who the
   sources are and whether they complete the handshake. *)
let victim_ip = Net.Ipv4_addr.of_octets 203 0 113 10
let victim_port = 443

(* Distinct TCP client tuples against the victim.  Benign clients live
   in 10.0.0.0/8; spoofed sources are drawn from 11..255 so the two
   populations can never collide.  Distinctness within a population uses
   the same bounded-rejection discipline as [Flowgen.flows]: after 16
   consecutive collisions the tuple comes from a counter-derived range
   (src port below the 1024 floor sampling uses) that is disjoint from
   anything sampling can produce. *)
let client_tuples rng ~n ~spoofed =
  let seen = Hashtbl.create (2 * n) in
  let counter = ref 0 in
  Array.init n (fun _ ->
      let rec go tries =
        if tries >= 16 then begin
          let c = !counter in
          incr counter;
          let src_port = 1 + (c mod 1023) in
          let q = c / 1023 in
          let o1 = if spoofed then 255 else 10 in
          let src_ip = Net.Ipv4_addr.of_octets o1 ((q lsr 8) land 0xff) (q land 0xff) 253 in
          Net.Five_tuple.make ~src_ip ~dst_ip:victim_ip ~proto:6 ~src_port ~dst_port:victim_port
        end
        else begin
          let o1 = if spoofed then 11 + Rng.int rng 245 else 10 in
          let src_ip =
            Net.Ipv4_addr.of_octets o1 (Rng.int rng 256) (Rng.int rng 256) (Rng.int rng 254 + 1)
          in
          let src_port = 1024 + Rng.int rng (65536 - 1024) in
          let ft = Net.Five_tuple.make ~src_ip ~dst_ip:victim_ip ~proto:6 ~src_port ~dst_port:victim_port in
          if Hashtbl.mem seen ft then go (tries + 1)
          else begin
            Hashtbl.add seen ft ();
            ft
          end
        end
      in
      go 0)

let data_size rng = Rng.pick rng [| 64; 512; 512; 1500 |]

let syn_flood rng ~benign_flows ~attack_factor ~packets_per_flow ~f =
  (* Benign flows are long-lived: they all handshake up front, then the
     data phase spreads each flow's packets across [packets_per_flow]
     rounds over the whole stream.  Every benign packet is shadowed by
     [attack_factor] spoofed SYNs, each from a fresh never-repeating
     source — the 10x-load shape of a classic spoofed SYN flood.  The
     split matters to defenses keeping per-flow admission state: the
     attack has the entire data phase to saturate or corrupt it between
     a flow's admission and its later packets. *)
  let benign = client_tuples rng ~n:benign_flows ~spoofed:false in
  let attack =
    client_tuples rng ~n:(benign_flows * (2 + packets_per_flow) * attack_factor) ~spoofed:true
  in
  let ai = ref 0 in
  let next_attack () =
    let ft = attack.(!ai mod Array.length attack) in
    incr ai;
    f { kind = Syn; flow = ft; benign = false; size = 64 }
  in
  let shadowed kind ft size =
    f { kind; flow = ft; benign = true; size };
    for _ = 1 to attack_factor do
      next_attack ()
    done
  in
  Array.iter
    (fun ft ->
      shadowed Syn ft 64;
      shadowed Ack ft 64)
    benign;
  for _ = 1 to packets_per_flow do
    Array.iter (fun ft -> shadowed Data ft (data_size rng)) benign
  done

let spoofed_storm rng ~sources ~f =
  (* One packet per spoofed source, at whatever scale the caller asks
     (10^6+): this leans directly on [Flowgen.flows]'s bounded-retry
     distinctness.  TCP tuples arrive as handshake-less SYNs, UDP ones
     as bare datagrams — a mixed volumetric storm. *)
  let tuples = Flowgen.flows rng ~n:sources in
  Array.iter
    (fun (ft : Net.Five_tuple.t) ->
      if ft.proto = 6 then f { kind = Syn; flow = ft; benign = false; size = 64 }
      else f { kind = Data; flow = ft; benign = false; size = data_size rng })
    tuples

let elephant_mice rng ~elephants ~mice ~elephant_pkts ~mouse_pkts ~f =
  let tuples = client_tuples rng ~n:(elephants + mice) ~spoofed:false in
  Array.iteri
    (fun i ft ->
      let is_elephant = i < elephants in
      let pkts = if is_elephant then elephant_pkts else mouse_pkts in
      f { kind = Syn; flow = ft; benign = true; size = 64 };
      f { kind = Ack; flow = ft; benign = true; size = 64 };
      for _ = 1 to pkts do
        let size = if is_elephant then 1500 else Rng.pick rng [| 64; 512 |] in
        f { kind = Data; flow = ft; benign = true; size }
      done)
    tuples

let flash_crowd rng ~flows ~steps ~f =
  (* Legitimate-but-sudden load: arrivals ramp linearly (step s carries
     a share proportional to s), every flow completing a real handshake
     before one request — the case a defense must NOT throttle. *)
  let tuples = client_tuples rng ~n:flows ~spoofed:false in
  let weight_sum = steps * (steps + 1) / 2 in
  let idx = ref 0 in
  for s = 1 to steps do
    let quota = if s = steps then flows - !idx else flows * s / weight_sum in
    for _ = 1 to quota do
      if !idx < flows then begin
        let ft = tuples.(!idx) in
        incr idx;
        f { kind = Syn; flow = ft; benign = true; size = 64 };
        f { kind = Ack; flow = ft; benign = true; size = 64 };
        f { kind = Data; flow = ft; benign = true; size = data_size rng }
      end
    done
  done

(* ------------------------------------------------------------------ *)

let event_hash e =
  let k = match e.kind with Syn -> 1 | Ack -> 2 | Data -> 3 in
  let h = Net.Five_tuple.hash e.flow in
  ((h * 131) + (k lsl 8) + (if e.benign then 1 else 0) + (e.size * 7)) land max_int

let digest gen =
  let h = ref 0x9e37 in
  gen (fun e -> h := ((!h * 1_000_003) + event_hash e) land 0x3FFF_FFFF);
  !h
