type event = { flow : int; size : int; time_us : int }
type t = { flows : Net.Five_tuple.t array; events : event array }

(* Simple IMIX-like size mix: mostly small ACK-sized frames, a band of
   medium frames, and full-MTU data frames. *)
let imix_size rng =
  let r = Rng.int rng 100 in
  if r < 50 then 64 + Rng.int rng 64
  else if r < 85 then 512 + Rng.int rng 256
  else 1400 + Rng.int rng 118

let ictf_like ?(n_flows = 100_000) ?(skew = 1.1) ?(duration_s = 60.0) ~seed ~packets () =
  let rng = Rng.create ~seed in
  let flows = Flowgen.flows rng ~n:n_flows in
  let zipf = Zipf.create ~n:n_flows ~skew in
  let duration_us = int_of_float (duration_s *. 1e6) in
  let events =
    Array.init packets (fun i ->
        {
          flow = Zipf.sample zipf rng;
          size = imix_size rng;
          time_us = (if packets = 1 then 0 else i * duration_us / (packets - 1));
        })
  in
  { flows; events }

let caida_like ?(flows_per_sec = 12_000) ?(skew = 1.05) ~seed ~duration_s ~packets () =
  let rng = Rng.create ~seed in
  let total_flows = max 1 (int_of_float (float_of_int flows_per_sec *. duration_s)) in
  let flows = Flowgen.flows rng ~n:total_flows in
  let duration_us = int_of_float (duration_s *. 1e6) in
  let zipf = Zipf.create ~n:1000 ~skew in
  let events =
    Array.init packets (fun i ->
        let time_us = if packets = 1 then 0 else i * duration_us / (packets - 1) in
        (* Flows arrive in index order over time; each packet belongs either
           to a brand-new flow (first appearance) or Zipf-reuses a recently
           arrived one, approximating the CAIDA working set. *)
        let newest = max 1 (total_flows * time_us / max 1 duration_us) in
        let flow =
          if Rng.int rng 100 < 35 then newest - 1
          else begin
            let back = Zipf.sample zipf rng * newest / 1000 in
            max 0 (newest - 1 - back)
          end
        in
        { flow; size = imix_size rng; time_us })
  in
  { flows; events }

let distinct_flows_before t cutoff_us =
  let seen = Hashtbl.create 1024 in
  Array.iter (fun e -> if e.time_us <= cutoff_us then Hashtbl.replace seen e.flow ()) t.events;
  Hashtbl.length seen

let packets ?(seed = 0x7ace) t =
  let rng = Rng.create ~seed in
  Array.to_seq t.events
  |> Seq.map (fun e ->
         let flow = t.flows.(e.flow) in
         let proto = if flow.Net.Five_tuple.proto = 6 then Net.Packet.Tcp else Net.Packet.Udp in
         Flowgen.packet_of_flow ~payload_len:(Flowgen.payload_for_frame ~frame_size:e.size ~proto) rng flow)

let event_count t = Array.length t.events
