(** Zipf-distributed sampling over ranks [0, n).

    The paper samples 100,000 flows from the ICTF trace and reports that
    their popularity follows a Zipf distribution with skewness 1.1 (§5.3);
    this module reproduces that distribution synthetically. *)

type t

(** [create ~n ~skew] precomputes the CDF for ranks 0..n-1 with
    P(rank = k) proportional to 1/(k+1)^skew. *)
val create : n:int -> skew:float -> t

(** [sample t rng] draws a rank; rank 0 is the most popular. *)
val sample : t -> Rng.t -> int

val n : t -> int

(** [probability t k] is the exact probability of rank [k]. *)
val probability : t -> int -> float
