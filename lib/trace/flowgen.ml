(* Rejection sampling stays fast while the drawn region of the tuple
   space is sparse, but an adversarial draw count (spoofed-source storms
   ask for millions of distinct tuples) could in principle make the
   retry loop degrade or spin.  Retries per tuple are bounded; past the
   bound we fall back to a counter-derived range that is disjoint from
   anything sampling can produce: the fallback pins [dst_port] to a
   value outside the sampled port set and packs the counter injectively
   into the source address/port bits, so fallback tuples collide neither
   with sampled tuples nor with each other. *)
let max_rejects = 16
let fallback_dst_port = 40000

let flows rng ~n =
  let seen = Hashtbl.create (2 * n) in
  let counter = ref 0 in
  let fallback () =
    let c = !counter in
    incr counter;
    let src_port = 1024 + (c mod 64512) in
    let q = c / 64512 in
    let src_ip = Net.Ipv4_addr.of_octets 10 ((q lsr 16) land 0xff) ((q lsr 8) land 0xff) (q land 0xff) in
    let dst_ip = Net.Ipv4_addr.of_octets 100 64 0 1 in
    Net.Five_tuple.make ~src_ip ~dst_ip ~proto:6 ~src_port ~dst_port:fallback_dst_port
  in
  let fresh () =
    let rec go tries =
      if tries >= max_rejects then fallback ()
      else begin
        let src_ip = Net.Ipv4_addr.of_octets 10 (Rng.int rng 256) (Rng.int rng 256) (Rng.int rng 254 + 1) in
        let dst_ip = Net.Ipv4_addr.of_octets (Rng.int rng 223 + 1) (Rng.int rng 256) (Rng.int rng 256) (Rng.int rng 254 + 1) in
        let proto = if Rng.int rng 100 < 80 then 6 else 17 in
        let src_port = 1024 + Rng.int rng (65536 - 1024) in
        let dst_port = Rng.pick rng [| 80; 443; 53; 22; 8080; 25; 3306 |] in
        let ft = Net.Five_tuple.make ~src_ip ~dst_ip ~proto ~src_port ~dst_port in
        if Hashtbl.mem seen ft then go (tries + 1)
        else begin
          Hashtbl.add seen ft ();
          ft
        end
      end
    in
    go 0
  in
  Array.init n (fun _ -> fresh ())

let packet_of_flow ?payload_len rng (flow : Net.Five_tuple.t) =
  let len = match payload_len with Some l -> l | None -> 16 + Rng.int rng 1384 in
  (* Deterministic per-flow payload: packets of one flow carry the same
     byte stream, distinct flows differ (this is what gives a DPI engine
     its flow-skewed state popularity). *)
  let seed = Net.Five_tuple.hash flow in
  let byte i =
    let v = ((seed lsr (i land 7)) + (i * 131) + (seed * 31 * (1 + (i land 15)))) land 0xffff in
    (* Mostly printable text with occasional binary, like application
       traffic: this is what drives a DPI automaton past its root. *)
    if v land 15 = 0 then v land 0xff else if v land 7 < 6 then 97 + (v mod 26) else 32 + (v mod 95)
  in
  let payload = String.init len (fun i -> Char.chr (byte i)) in
  let proto = if flow.proto = 6 then Net.Packet.Tcp else Net.Packet.Udp in
  Net.Packet.make ~src_ip:flow.src_ip ~dst_ip:flow.dst_ip ~proto ~src_port:flow.src_port ~dst_port:flow.dst_port
    payload

let figure8_frame_sizes = [ 64; 512; 1500; 9000 ]

(* Ethernet's minimum frame is 64 bytes on the wire; a headers-only TCP
   segment (14 + 20 + 20 = 54 B) must be padded up to it, never emitted
   short.  Clamping the payload at [min_frame - hdr] instead of 0 keeps
   every generated frame at or above the minimum without changing any of
   the Figure-8 sizes (all >= 64 B). *)
let min_frame = 64

let payload_for_frame ~frame_size ~proto =
  let hdr = 14 + 20 + (match proto with Net.Packet.Tcp -> 20 | Net.Packet.Udp -> 8) in
  max (frame_size - hdr) (min_frame - hdr)
