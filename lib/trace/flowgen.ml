let flows rng ~n =
  let seen = Hashtbl.create (2 * n) in
  let fresh () =
    let rec go () =
      let src_ip = Net.Ipv4_addr.of_octets 10 (Rng.int rng 256) (Rng.int rng 256) (Rng.int rng 254 + 1) in
      let dst_ip = Net.Ipv4_addr.of_octets (Rng.int rng 223 + 1) (Rng.int rng 256) (Rng.int rng 256) (Rng.int rng 254 + 1) in
      let proto = if Rng.int rng 100 < 80 then 6 else 17 in
      let src_port = 1024 + Rng.int rng (65536 - 1024) in
      let dst_port = Rng.pick rng [| 80; 443; 53; 22; 8080; 25; 3306 |] in
      let ft = Net.Five_tuple.make ~src_ip ~dst_ip ~proto ~src_port ~dst_port in
      if Hashtbl.mem seen ft then go ()
      else begin
        Hashtbl.add seen ft ();
        ft
      end
    in
    go ()
  in
  Array.init n (fun _ -> fresh ())

let packet_of_flow ?payload_len rng (flow : Net.Five_tuple.t) =
  let len = match payload_len with Some l -> l | None -> 16 + Rng.int rng 1384 in
  (* Deterministic per-flow payload: packets of one flow carry the same
     byte stream, distinct flows differ (this is what gives a DPI engine
     its flow-skewed state popularity). *)
  let seed = Net.Five_tuple.hash flow in
  let byte i =
    let v = ((seed lsr (i land 7)) + (i * 131) + (seed * 31 * (1 + (i land 15)))) land 0xffff in
    (* Mostly printable text with occasional binary, like application
       traffic: this is what drives a DPI automaton past its root. *)
    if v land 15 = 0 then v land 0xff else if v land 7 < 6 then 97 + (v mod 26) else 32 + (v mod 95)
  in
  let payload = String.init len (fun i -> Char.chr (byte i)) in
  let proto = if flow.proto = 6 then Net.Packet.Tcp else Net.Packet.Udp in
  Net.Packet.make ~src_ip:flow.src_ip ~dst_ip:flow.dst_ip ~proto ~src_port:flow.src_port ~dst_port:flow.dst_port
    payload

let figure8_frame_sizes = [ 64; 512; 1500; 9000 ]

let payload_for_frame ~frame_size ~proto =
  let hdr = 14 + 20 + (match proto with Net.Packet.Tcp -> 20 | Net.Packet.Udp -> 8) in
  max 0 (frame_size - hdr)
