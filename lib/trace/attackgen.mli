(** Seeded adversarial traffic generators: SYN floods, spoofed-source
    storms, elephant/mice mixes and flash crowds.  Generators stream
    events through a callback so millions-of-flows scale never builds a
    packet array; the same [Rng] seed replays the same attack byte for
    byte. *)

type kind = Syn | Ack | Data

type event = {
  kind : kind;
  flow : Net.Five_tuple.t;
  benign : bool; (* false = attack traffic *)
  size : int; (* wire bytes *)
}

val kind_name : kind -> string

(** All TCP scenarios target this one victim service. *)
val victim_ip : Net.Ipv4_addr.t

val victim_port : int

(** [syn_flood rng ~benign_flows ~attack_factor ~packets_per_flow ~f]:
    every benign flow handshakes (SYN, ACK) up front, then the data
    phase spreads each flow's [packets_per_flow] packets across rounds
    over the whole stream; every benign packet is interleaved with
    [attack_factor] spoofed SYNs that never complete, each from a fresh
    never-repeating source.  Long-lived flows under sustained attack:
    a stateful defense must keep its admission state intact between a
    flow's handshake and its last data packet. *)
val syn_flood :
  Rng.t -> benign_flows:int -> attack_factor:int -> packets_per_flow:int -> f:(event -> unit) -> unit

(** [spoofed_storm rng ~sources ~f] emits one packet per distinct
    spoofed source (SYN for TCP tuples, bare datagram for UDP) at
    whatever scale the caller asks — exercises [Flowgen.flows]'s
    bounded-retry distinctness at [sources >= 10^6]. *)
val spoofed_storm : Rng.t -> sources:int -> f:(event -> unit) -> unit

(** Benign skewed mix: [elephants] flows of [elephant_pkts] 1500 B
    packets each alongside [mice] flows of [mouse_pkts] small packets. *)
val elephant_mice :
  Rng.t -> elephants:int -> mice:int -> elephant_pkts:int -> mouse_pkts:int -> f:(event -> unit) -> unit

(** Legitimate-but-sudden load: [flows] handshaking flows arriving on a
    linear ramp over [steps] steps — the case a defense must not
    throttle. *)
val flash_crowd : Rng.t -> flows:int -> steps:int -> f:(event -> unit) -> unit

(** [digest gen] folds every event [gen] produces into a small integer —
    the determinism fingerprint used by tests and CI diffs:
    [digest (fun f -> syn_flood rng ~... ~f)]. *)
val digest : ((event -> unit) -> unit) -> int
